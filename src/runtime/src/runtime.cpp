#include "ftm/runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <numeric>
#include <set>
#include <tuple>

#include "ftm/cpu/cpu_gemm.hpp"
#include "ftm/runtime/node_tier.hpp"
#include "ftm/trace/trace.hpp"
#include "ftm/util/stats.hpp"

namespace ftm::runtime {

// ---------------------------------------------------------------- queue --

RequestQueue::RequestQueue(int clusters)
    : qs_(static_cast<std::size_t>(clusters)),
      load_flops_(static_cast<std::size_t>(clusters), 0.0),
      executing_(static_cast<std::size_t>(clusters), 0),
      disabled_(static_cast<std::size_t>(clusters), 0) {
  FTM_EXPECTS(clusters >= 1);
}

void RequestQueue::push(int cluster, std::unique_ptr<Request> r,
                        bool front) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    FTM_EXPECTS(!stop_);
    FTM_EXPECTS(cluster >= 0 &&
                cluster < static_cast<int>(qs_.size()));
    load_flops_[cluster] += r->in.flops();
    if (front) {
      qs_[cluster].push_front(std::move(r));
    } else {
      qs_[cluster].push_back(std::move(r));
    }
  }
  cv_work_.notify_all();
}

bool RequestQueue::try_push(int cluster, std::unique_ptr<Request>& r) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    FTM_EXPECTS(cluster >= 0 &&
                cluster < static_cast<int>(qs_.size()));
    load_flops_[cluster] += r->in.flops();
    qs_[cluster].push_back(std::move(r));
  }
  cv_work_.notify_all();
  return true;
}

std::unique_ptr<Request> RequestQueue::take_locked(int cluster,
                                                   bool allow_steal,
                                                   bool* stolen) {
  if (!qs_[cluster].empty()) {
    auto r = std::move(qs_[cluster].front());
    qs_[cluster].pop_front();
    ++executing_[cluster];
    if (stolen) *stolen = false;
    return r;
  }
  // A quarantined cluster neither steals nor is stolen from: its leftover
  // work is re-routed by its own worker, not raced for by the others.
  if (allow_steal && steal_enabled_ && disabled_[cluster] == 0) {
    int victim = -1;
    for (int c = 0; c < static_cast<int>(qs_.size()); ++c) {
      if (c == cluster || qs_[c].empty() || disabled_[c] != 0) continue;
      // Batch members are never stolen: the batch's cycle model (lane
      // packing, shared-operand reuse) assumes co-location on one cluster.
      if (qs_[c].back()->batch != nullptr) continue;
      if (victim < 0 || load_flops_[c] > load_flops_[victim]) victim = c;
    }
    if (victim >= 0) {
      auto r = std::move(qs_[victim].back());
      qs_[victim].pop_back();
      const double f = r->in.flops();
      load_flops_[victim] = std::max(0.0, load_flops_[victim] - f);
      load_flops_[cluster] += f;
      ++executing_[cluster];
      if (stolen) *stolen = true;
      return r;
    }
  }
  return nullptr;
}

std::unique_ptr<Request> RequestQueue::pop(int cluster, bool allow_steal,
                                           bool* stolen) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto r = take_locked(cluster, allow_steal, stolen)) return r;
    if (stop_) return nullptr;
    cv_work_.wait(lock);
  }
}

RequestQueue::PopResult RequestQueue::pop_wait(
    int cluster, bool allow_steal, std::chrono::milliseconds timeout,
    std::unique_ptr<Request>* out, bool* stolen) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (auto r = take_locked(cluster, allow_steal, stolen)) {
      *out = std::move(r);
      return PopResult::Item;
    }
    if (stop_) return PopResult::Shutdown;
    if (cv_work_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (auto r = take_locked(cluster, allow_steal, stolen)) {
        *out = std::move(r);
        return PopResult::Item;
      }
      return stop_ ? PopResult::Shutdown : PopResult::Timeout;
    }
  }
}

void RequestQueue::finished(int cluster, double flops) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --executing_[cluster];
    load_flops_[cluster] = std::max(0.0, load_flops_[cluster] - flops);
  }
  cv_idle_.notify_all();
}

int RequestQueue::least_loaded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int best = -1;
  for (int c = 0; c < static_cast<int>(qs_.size()); ++c) {
    if (disabled_[c] != 0) continue;
    if (best < 0 || load_flops_[c] < load_flops_[best]) best = c;
  }
  if (best >= 0) return best;
  best = 0;  // every cluster quarantined: binding falls back to load only
  for (int c = 1; c < static_cast<int>(qs_.size()); ++c) {
    if (load_flops_[c] < load_flops_[best]) best = c;
  }
  return best;
}

std::vector<int> RequestQueue::idle_clusters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> idle;
  for (int c = 0; c < static_cast<int>(qs_.size()); ++c) {
    if (disabled_[c] == 0 && qs_[c].empty() && executing_[c] == 0) {
      idle.push_back(c);
    }
  }
  return idle;
}

void RequestQueue::set_enabled(int cluster, bool enabled) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    FTM_EXPECTS(cluster >= 0 && cluster < static_cast<int>(qs_.size()));
    disabled_[cluster] = enabled ? 0 : 1;
  }
  if (enabled) cv_work_.notify_all();
}

bool RequestQueue::enabled(int cluster) const {
  const std::lock_guard<std::mutex> lock(mu_);
  FTM_EXPECTS(cluster >= 0 && cluster < static_cast<int>(qs_.size()));
  return disabled_[cluster] == 0;
}

void RequestQueue::wait_idle() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] {
    for (const auto& q : qs_)
      if (!q.empty()) return false;
    for (const int e : executing_)
      if (e != 0) return false;
    return true;
  });
}

void RequestQueue::set_stealing(bool enabled) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    steal_enabled_ = enabled;
  }
  if (enabled) cv_work_.notify_all();
}

void RequestQueue::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_idle_.notify_all();
}

bool RequestQueue::stopped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

bool RequestQueue::wait_stop_for(std::chrono::duration<double, std::milli> d)
    const {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_work_.wait_for(lock, d, [&] { return stop_; });
}

std::size_t RequestQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& q : qs_) n += q.size();
  return n;
}

// -------------------------------------------------------------- runtime --

namespace {

const isa::MachineConfig& first_machine(
    const std::vector<core::FtimmEngine*>& engines) {
  FTM_EXPECTS(!engines.empty() && engines.front() != nullptr);
  return engines.front()->machine();
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void validate_resilience(const ResilienceOptions& rz) {
  FTM_EXPECTS(rz.max_retries >= 0);
  FTM_EXPECTS(rz.backoff_ms >= 0 && rz.backoff_multiplier >= 1.0);
  FTM_EXPECTS(rz.deadline_ms >= 0);
  FTM_EXPECTS(rz.quarantine_after >= 0);
  FTM_EXPECTS(rz.probe_interval_ms > 0);
}

/// Batch-lifecycle bookkeeping: the last member of a batch to resolve
/// (with a value or an exception — members are independent failure
/// domains) closes the batch's trace span.
void note_batch_member_done(const Request& req) {
  if (!req.batch) return;
  if (req.batch->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
#if FTM_TRACE_ENABLED
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    trace::Event e;
    e.name = "batch_done";
    e.cat = "batch";
    e.ts = ts->host_now_us();
    e.track = trace::TrackKind::Runtime;
    e.arg("id", req.batch->id);
    e.arg("size", static_cast<std::uint64_t>(req.batch->size));
    ts->record(e);
  }
#endif
}

#if FTM_TRACE_ENABLED
void trace_instant(const char* name, int cluster) {
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    trace::Event e;
    e.name = name;
    e.cat = "health";
    e.ts = ts->host_now_us();
    e.cluster = cluster;
    e.track = trace::TrackKind::Runtime;
    ts->record(e);
  }
}
#else
void trace_instant(const char*, int) {}
#endif

}  // namespace

GemmRuntime::GemmRuntime(const RuntimeOptions& ro,
                         const isa::MachineConfig& mc)
    : ro_(ro), mc_(mc), queue_(ro.clusters) {
  FTM_EXPECTS(ro.clusters >= 1);
  validate_resilience(ro_.resilience);
  const auto kernels = std::make_shared<kernelgen::KernelCache>(mc);
  clusters_.resize(static_cast<std::size_t>(ro.clusters));
  for (int c = 0; c < ro.clusters; ++c) {
    auto& cs = clusters_[c];
    cs.owned = std::make_unique<core::FtimmEngine>(mc, kernels);
    cs.engine = cs.owned.get();
    cs.engine->cluster().set_id(c);
    cs.engine->cluster().set_fault_injector(ro_.fault_injector);
    if (ro_.tuning) cs.engine->set_plan_provider(ro_.tuning);
    cs.lanes.assign(static_cast<std::size_t>(mc.cores_per_cluster), 0);
  }
  init_host_pool();
  start_workers();
  start_flusher();
}

GemmRuntime::GemmRuntime(const std::vector<core::FtimmEngine*>& engines,
                         const RuntimeOptions& ro)
    : ro_(ro),
      mc_(first_machine(engines)),
      queue_(static_cast<int>(engines.size())) {
  ro_.clusters = static_cast<int>(engines.size());
  validate_resilience(ro_.resilience);
  clusters_.resize(engines.size());
  for (std::size_t c = 0; c < engines.size(); ++c) {
    FTM_EXPECTS(engines[c] != nullptr);
    clusters_[c].engine = engines[c];
    if (ro_.fault_injector != nullptr) {
      clusters_[c].engine->cluster().set_fault_injector(ro_.fault_injector);
    }
    if (ro_.tuning) clusters_[c].engine->set_plan_provider(ro_.tuning);
    clusters_[c].lanes.assign(static_cast<std::size_t>(mc_.cores_per_cluster),
                              0);
  }
  init_host_pool();
  start_workers();
  start_flusher();
}

void GemmRuntime::init_host_pool() {
  FTM_EXPECTS(ro_.host_threads >= 0);
  unsigned threads = static_cast<unsigned>(ro_.host_threads);
  if (threads == 0) {
    threads = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  }
  if (threads > 1) host_pool_ = std::make_unique<TaskPool>(threads);
}

GemmRuntime::~GemmRuntime() {
  stop_flusher();     // no age trigger can race the final drain
  flush_batches();    // held members enter the queue before shutdown
  queue_.shutdown();  // workers drain whatever is still queued, then exit
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void GemmRuntime::start_flusher() {
  if (!ro_.batching.enabled) return;
  batcher_ = std::make_unique<Batcher>(ro_.batching);
  flusher_ = std::thread([this] { flusher_loop(); });
}

void GemmRuntime::stop_flusher() {
  if (!flusher_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(flusher_mu_);
    flusher_stop_ = true;
  }
  flusher_cv_.notify_all();
  flusher_.join();
}

void GemmRuntime::flusher_loop() {
  // Tick at half the age budget so a class waits at most ~1.5x
  // max_delay_ms; floor keeps a zero/near-zero budget from busy-spinning.
  const auto tick = std::chrono::duration<double, std::milli>(
      std::max(0.05, ro_.batching.max_delay_ms / 2));
  std::unique_lock<std::mutex> lock(flusher_mu_);
  for (;;) {
    flusher_cv_.wait_for(lock, tick);
    if (flusher_stop_) return;
    lock.unlock();
    for (auto& f : batcher_->take_aged(std::chrono::steady_clock::now())) {
      dispatch_batch(std::move(f));
    }
    lock.lock();
  }
}

void GemmRuntime::flush_batches() {
  if (!batcher_) return;
  for (auto& f : batcher_->take_all()) dispatch_batch(std::move(f));
}

void GemmRuntime::start_workers() {
  workers_.reserve(clusters_.size());
  for (int c = 0; c < clusters(); ++c) {
    workers_.emplace_back([this, c] { worker_loop(c); });
  }
}

void GemmRuntime::worker_loop(int cluster) {
  if (!ro_.resilience.enabled) {
    // Fail-fast mode: the original blocking loop, zero timed wakeups.
    for (;;) {
      bool stolen = false;
      auto r = queue_.pop(cluster, ro_.work_stealing, &stolen);
      if (!r) return;
      process(cluster, std::move(r), stolen);
    }
  }
  // Resilient mode: the timed pop doubles as the quarantine probe clock —
  // a quarantined worker alternates between draining its own deque
  // (diverting each request to a healthy cluster) and probing for
  // recovery; a healthy worker just loops on the timeout.
  const auto tick = std::chrono::milliseconds(std::max<long>(
      1, std::lround(std::ceil(ro_.resilience.probe_interval_ms))));
  for (;;) {
    const bool q = quarantined(cluster);
    std::unique_ptr<Request> r;
    bool stolen = false;
    const auto pr =
        queue_.pop_wait(cluster, ro_.work_stealing && !q, tick, &r, &stolen);
    if (pr == RequestQueue::PopResult::Shutdown) return;
    if (pr == RequestQueue::PopResult::Item) {
      if (q) {
        divert(cluster, std::move(r));
      } else {
        process(cluster, std::move(r), stolen);
      }
    } else if (q) {
      probe(cluster);
    }
  }
}

void GemmRuntime::validate(const core::FtimmOptions& opt) const {
  FTM_EXPECTS(opt.cores >= 1 && opt.cores <= mc_.cores_per_cluster);
  FTM_EXPECTS(opt.wide_problem_flops > 0);
}

core::IntegrityOptions GemmRuntime::effective_integrity(
    const core::FtimmOptions& opt, const QosOptions& qos) const {
  const core::IntegrityOptions& cls =
      ro_.integrity.for_priority(qos.priority);
  core::IntegrityOptions eff = opt.integrity;
  // Strongest mode wins (IntegrityMode is ordered by strength); the
  // loosest tolerance wins so a caller can widen it for wild data.
  eff.mode = std::max({eff.mode, qos.integrity.mode, cls.mode});
  eff.tolerance_scale =
      std::max({eff.tolerance_scale, qos.integrity.tolerance_scale,
                cls.tolerance_scale});
  return eff;
}

std::unique_ptr<Request> GemmRuntime::make_request(
    const core::GemmInput& in, const core::FtimmOptions& opt) {
  auto r = std::make_unique<Request>();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    r->id = ++next_id_;
  }
  r->in = in;
  r->opt = opt;
  // Attach the shared host pool unless the caller brought their own; the
  // engine's functional work then runs across pool threads (cycle results
  // are pool-size-independent, see docs/performance.md).
  if (r->opt.host_pool == nullptr) r->opt.host_pool = host_pool_.get();
  r->submit_time = std::chrono::steady_clock::now();
  return r;
}

std::future<core::GemmResult> GemmRuntime::submit(const core::GemmInput& in) {
  return submit(in, ro_.gemm);
}

std::future<core::GemmResult> GemmRuntime::submit(
    const core::GemmInput& in, const core::FtimmOptions& opt) {
  return submit(in, opt, QosOptions{});
}

std::future<core::GemmResult> GemmRuntime::submit(
    const core::GemmInput& in, const core::FtimmOptions& opt,
    const QosOptions& qos) {
  SubmitResult sr = try_submit(in, opt, qos);
  if (sr.accepted()) return std::move(*sr.future);
  // Admission refused: the caller still gets a future, resolved with the
  // typed rejection (every submission resolves — accepted or not).
  std::promise<core::GemmResult> p;
  p.set_exception(std::make_exception_ptr(FaultError(
      FaultKind::Rejected, -1, -1,
      std::string("admission rejected: ") + to_string(sr.reject))));
  return p.get_future();
}

SubmitResult GemmRuntime::try_submit(const core::GemmInput& in) {
  return try_submit(in, ro_.gemm);
}

SubmitResult GemmRuntime::try_submit(const core::GemmInput& in,
                                     const core::FtimmOptions& opt,
                                     const QosOptions& qos) {
  validate(opt);
  FTM_EXPECTS(in.m >= 1 && in.n >= 1 && in.k >= 1);
  // Malformed inputs are a caller bug: reject them here, synchronously,
  // so a bad submission can never fault a worker thread. A functional
  // submission must bind all three views, consistently with (m, n, k).
  const bool any_view = in.a.data() != nullptr || in.b.data() != nullptr ||
                        in.c.data() != nullptr;
  if (any_view) {
    FTM_EXPECTS(in.a.data() != nullptr && in.b.data() != nullptr &&
                in.c.data() != nullptr);
    FTM_EXPECTS(in.a.rows() == in.m && in.a.cols() == in.k);
    FTM_EXPECTS(in.b.rows() == in.k && in.b.cols() == in.n);
    FTM_EXPECTS(in.c.rows() == in.m && in.c.cols() == in.n);
  }
  const RejectReason why = admit(in, opt, qos);
  if (why != RejectReason::None) {
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++rejected_;
    }
    FTM_TRACE_COUNTER("runtime.rejected", 1);
    SubmitResult sr;
    sr.reject = why;
    return sr;
  }
  SubmitResult sr;
  // Node-tier intercept (ISSUE 9): problems at node scale bypass both
  // wide-splitting and batching — the tier owns sharding. The request
  // still flows through a worker queue so ordering, stats, resilience
  // (retry -> CPU fallback) and future semantics are unchanged.
  if (ro_.nodes != nullptr && in.flops() >= ro_.node_problem_flops) {
    auto r = make_request(in, opt);
    r->priority = qos.priority;
    r->arrival_cycle = qos.arrival_cycle;
    r->opt.integrity = effective_integrity(opt, qos);
    r->cls = tune::ShapeClass::of(in.m, in.n, in.k, opt.cores, opt.dtype);
    r->node_tier = true;
    sr.future = r->promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++submitted_;
    }
    FTM_TRACE_COUNTER("runtime.submitted", 1);
    r->bound_cluster = queue_.least_loaded();
    const int target = r->bound_cluster;
    queue_.push(target, std::move(r), qos.priority == Priority::Latency);
    return sr;
  }
  if (ro_.split_wide && clusters() > 1 &&
      in.flops() >= opt.wide_problem_flops &&
      in.m >= 2 * ro_.split_min_rows) {
    std::vector<int> idle = queue_.idle_clusters();
    const std::size_t max_shards =
        ro_.split_min_rows > 0 ? in.m / ro_.split_min_rows : in.m;
    if (idle.size() > max_shards) idle.resize(max_shards);
    if (idle.size() >= 2) {
      sr.future = submit_split(in, opt, qos, idle);
      return sr;
    }
  }
  auto r = make_request(in, opt);
  r->priority = qos.priority;
  r->arrival_cycle = qos.arrival_cycle;
  // ABFT policy is resolved once, here: every dispatch of this request
  // (retries, steals, CPU fallback aside) runs the same integrity mode.
  r->opt.integrity = effective_integrity(opt, qos);
  r->cls = tune::ShapeClass::of(in.m, in.n, in.k, opt.cores, opt.dtype);
  sr.future = r->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++submitted_;
  }
  FTM_TRACE_COUNTER("runtime.submitted", 1);
  // Only Normal/Bulk sub-wide requests coalesce; Latency requests bypass
  // the buffer entirely and jump their cluster's FIFO.
  if (batcher_ != nullptr && qos.priority != Priority::Latency &&
      in.flops() < opt.wide_problem_flops) {
    if (auto flush = batcher_->add(std::move(r))) {
      dispatch_batch(std::move(*flush));
    }
    return sr;
  }
  r->bound_cluster = queue_.least_loaded();
  const int target = r->bound_cluster;
  queue_.push(target, std::move(r), qos.priority == Priority::Latency);
  return sr;
}

RejectReason GemmRuntime::admit(const core::GemmInput& in,
                                const core::FtimmOptions& opt,
                                const QosOptions& qos) {
  if (queue_.stopped()) return RejectReason::Shutdown;
  const BatchOptions& bo = ro_.batching;
  if (bo.max_queue > 0) {
    const std::size_t depth =
        queue_.pending() + (batcher_ ? batcher_->held() : 0);
    std::size_t bound = bo.max_queue;
    if (qos.priority == Priority::Bulk) {
      bound = std::max<std::size_t>(1, bo.max_queue / 2);
    } else if (qos.priority == Priority::Latency) {
      bound = bo.max_queue + bo.max_queue / 2;
    }
    if (depth >= bound) return RejectReason::QueueFull;
  }
  if (qos.deadline_cycles > 0) {
    const tune::ShapeClass cls =
        tune::ShapeClass::of(in.m, in.n, in.k, opt.cores, opt.dtype);
    if (predict_latency_cycles(qos, cls) > qos.deadline_cycles) {
      return RejectReason::DeadlineUnmeetable;
    }
  }
  return RejectReason::None;
}

std::uint64_t GemmRuntime::predict_latency_cycles(
    const QosOptions& qos, const tune::ShapeClass& cls) const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  // Backlog estimate: the least-loaded enabled cluster's lane frontier.
  // An arrival after the frontier waits for nothing; before it, the
  // request queues behind (frontier - arrival) cycles of committed work.
  std::uint64_t frontier = 0;
  bool first = true;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (clusters_[c].health.quarantined) continue;
    std::uint64_t mk = 0;
    for (const std::uint64_t t : clusters_[c].lanes) mk = std::max(mk, t);
    if (first || mk < frontier) frontier = mk;
    first = false;
  }
  const std::uint64_t backlog =
      frontier > qos.arrival_cycle ? frontier - qos.arrival_cycle : 0;
  // Execution estimate: EWMA of this shape class's recent successful
  // dispatches. An unseen class predicts backlog only (optimistic on
  // purpose — admission should not shed load it knows nothing about).
  std::uint64_t exec = 0;
  if (const auto it = class_cycles_.find(cls); it != class_cycles_.end()) {
    exec = static_cast<std::uint64_t>(it->second);
  }
  return backlog + exec;
}

std::future<core::GemmResult> GemmRuntime::submit_split(
    const core::GemmInput& in, const core::FtimmOptions& opt,
    const QosOptions& qos, const std::vector<int>& targets) {
  const int P = static_cast<int>(targets.size());
  auto group = std::make_shared<SplitGroup>();
  group->remaining = P;
  group->shards = P;
  group->flops = in.flops();
  auto fut = group->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++submitted_;
    ++splits_;
  }
  FTM_TRACE_COUNTER("runtime.submitted", 1);
  FTM_TRACE_COUNTER("runtime.splits", 1);
#if FTM_TRACE_ENABLED
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    trace::Event e;
    e.name = "sharded";
    e.cat = "request";
    e.ts = ts->host_now_us();
    e.track = trace::TrackKind::Runtime;
    e.arg("shards", static_cast<std::uint64_t>(P));
    e.arg("m", in.m);
    e.arg("n", in.n);
    ts->record(e);
  }
#endif
  const bool sliced = in.a.data() != nullptr;
  const std::size_t base = in.m / static_cast<std::size_t>(P);
  const std::size_t rem = in.m % static_cast<std::size_t>(P);
  std::size_t r0 = 0;
  for (int p = 0; p < P; ++p) {
    const std::size_t rows = base + (static_cast<std::size_t>(p) < rem);
    core::GemmInput shard;
    shard.m = rows;
    shard.n = in.n;
    shard.k = in.k;
    if (sliced) {
      shard.a = in.a.block(r0, 0, rows, in.k);
      shard.b = in.b;
      shard.c = in.c.block(r0, 0, rows, in.n);
    }
    auto req = make_request(shard, opt);
    req->group = group;
    req->priority = qos.priority;
    req->arrival_cycle = qos.arrival_cycle;
    req->opt.integrity = effective_integrity(opt, qos);
    req->cls = tune::ShapeClass::of(shard.m, shard.n, shard.k, opt.cores,
                                    opt.dtype);
    const int target = targets[static_cast<std::size_t>(p)];
    req->bound_cluster = target;
    queue_.push(target, std::move(req));
    r0 += rows;
  }
  return fut;
}

void GemmRuntime::dispatch_batch(Batcher::Flush flush) {
  const int n = static_cast<int>(flush.members.size());
  if (n == 0) return;
  auto group = std::make_shared<BatchGroup>();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    group->id = ++batches_;
    if (n >= 2) coalesced_ += static_cast<std::uint64_t>(n);
  }
  group->size = n;
  group->cls = flush.cls;
  group->trigger = flush.trigger;
  group->remaining.store(n, std::memory_order_relaxed);
  // Packing width: members run one core each across W shared lanes of one
  // cluster with DDR bandwidth shared W ways — the sgemm_batched model
  // run_all() uses for its small phase.
  const int W = std::min(
      n, std::min(ro_.batching.max_batch, mc_.cores_per_cluster));
  group->width = n >= 2 ? W : 0;
  FTM_TRACE_COUNTER("runtime.batched", 1);
  const int target = queue_.least_loaded();
  ClusterState& cs = clusters_[static_cast<std::size_t>(target)];

  // One plan lookup per distinct (post-repack) shape in the batch; every
  // same-shape member shares the GemmPlan by pointer.
  std::map<PlanKey, std::shared_ptr<const core::GemmPlan>> planned;
  // Shared-operand detection: a member whose A (or B) view is the same
  // buffer and shape as an earlier batch-mate's reuses the staged panel;
  // its dispatch is charged the panel's DMA bytes once, not twice.
  using Panel = std::tuple<const float*, std::size_t, std::size_t>;
  std::set<Panel> staged;  // (base pointer, rows, cols)
  for (auto& m : flush.members) {
    m->batch = group;
    m->bound_cluster = target;
    if (n >= 2) {
      // Repack: one core per member, W-way lane/bandwidth sharing. A
      // singleton flush dispatches exactly as it was submitted.
      m->opt.cores = 1;
      m->opt.bandwidth_share = W;
      m->lane_limit = W;
      const PlanKey key = PlanKey::of(m->in.m, m->in.n, m->in.k, m->opt);
      auto it = planned.find(key);
      if (it == planned.end()) {
        it = planned
                 .emplace(key, std::make_shared<const core::GemmPlan>(
                                   cs.engine->plan(m->in.m, m->in.n,
                                                   m->in.k, m->opt)))
                 .first;
      }
      m->preplanned = it->second;
      std::uint64_t reuse = 0;
      if (m->in.a.data() != nullptr &&
          !staged.insert({m->in.a.data(), m->in.m, m->in.k}).second) {
        reuse += static_cast<std::uint64_t>(m->in.m) * m->in.k * 4;
      }
      if (m->in.b.data() != nullptr &&
          !staged.insert({m->in.b.data(), m->in.k, m->in.n}).second) {
        reuse += static_cast<std::uint64_t>(m->in.k) * m->in.n * 4;
      }
      m->reuse_panel_bytes = reuse;
      group->shared_panel_bytes += reuse;
    }
  }
#if FTM_TRACE_ENABLED
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    trace::Event e;
    e.name = "batch";
    e.cat = "batch";
    e.ts = ts->host_now_us();
    e.cluster = target;
    e.track = trace::TrackKind::Runtime;
    e.arg("id", group->id);
    e.arg("size", static_cast<std::uint64_t>(n));
    e.arg("shared_bytes", group->shared_panel_bytes);
    ts->record(e);
  }
#endif
  for (auto& m : flush.members) {
    queue_.push(target, std::move(m));
  }
}

core::GemmResult GemmRuntime::run_on_cluster(int cluster, Request& req,
                                             RequestStats& rs) {
  if (req.node_tier) {
    // Node-tier dispatch (ISSUE 9): the whole problem runs on the grid
    // of modeled processors; no plan-cache probe here — each node's own
    // runtime keeps its own cache.
    rs.node_dispatch = true;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++node_dispatches_;
    }
    FTM_TRACE_COUNTER("runtime.node_dispatches", 1);
    return ro_.nodes->run(req.in, req.opt);
  }
  ClusterState& cs = clusters_[static_cast<std::size_t>(cluster)];
  core::GemmPlan plan;
  if (req.preplanned != nullptr) {
    // Batched dispatch: the plan was computed once at flush time and is
    // shared by every same-shape batch-mate — no per-member cache probe.
    plan = *req.preplanned;
    rs.plan_cache_hit = true;
  } else if (ro_.plan_cache) {
    const PlanKey key = PlanKey::of(req.in.m, req.in.n, req.in.k, req.opt);
    if (auto hit = plans_.find(key)) {
      plan = *hit;
      rs.plan_cache_hit = true;
    } else {
      plan = cs.engine->plan(req.in.m, req.in.n, req.in.k, req.opt);
      plans_.insert(key, plan);
    }
  } else {
    plan = cs.engine->plan(req.in.m, req.in.n, req.in.k, req.opt);
  }
  if (plan.tuned) {
    rs.tuned_plan = true;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++tuned_plans_;
    }
    FTM_TRACE_COUNTER("runtime.tuned_plans", 1);
  }
  return cs.engine->sgemm_planned(req.in, plan, req.opt);
}

void GemmRuntime::process(int cluster, std::unique_ptr<Request> req,
                          bool stolen) {
  const ResilienceOptions& res = ro_.resilience;
  const double flops = req->in.flops();
  const auto t_start = std::chrono::steady_clock::now();
  RequestStats rs;
  rs.id = req->id;
  rs.cluster = cluster;
  rs.stolen = stolen;
  rs.shards = req->group ? req->group->shards : 0;
  rs.attempt = req->attempts;
  rs.queue_wait_ms = ms_between(req->submit_time, t_start);
  rs.priority = req->priority;
  rs.arrival_cycle = req->arrival_cycle;
  if (req->batch) {
    rs.batched = true;
    rs.batch_id = req->batch->id;
    rs.batch_size = req->batch->size;
  }

  // Wall-clock deadline: checked before (re-)execution, never retried —
  // the caller's time budget is gone no matter which cluster runs it.
  // Not charged to the cluster's health either: it is not a cluster fault.
  if (res.enabled && wall_deadline_passed(*req)) {
    rs.deadline_missed = true;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++deadline_misses_;
    }
    FTM_TRACE_COUNTER("runtime.deadline_misses", 1);
    fail(std::move(req),
         std::make_exception_ptr(FaultError(
             FaultKind::DeadlineExceeded, cluster, -1,
             "wall-clock deadline exceeded before dispatch")),
         rs);
    queue_.finished(cluster, flops);
    return;
  }
  if (res.enabled && req->attempts == 0) snapshot_c(*req);
  ++req->attempts;

  ClusterState& cs = clusters_[static_cast<std::size_t>(cluster)];
  core::GemmResult result;
  bool ok = false;
  bool is_fault = false;
  std::exception_ptr err;
  try {
    result = run_on_cluster(cluster, *req, rs);
    // Simulated-cycle deadline: known only after the (simulated) run. It
    // is a retryable fault — a stalled cluster blows it while a healthy
    // one may not — and it feeds the circuit breaker, which is exactly
    // how a stalled-but-alive cluster ends up quarantined.
    if (res.enabled && res.deadline_cycles > 0 &&
        result.cycles > res.deadline_cycles) {
      rs.deadline_missed = true;
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++deadline_misses_;
      }
      FTM_TRACE_COUNTER("runtime.deadline_misses", 1);
      throw FaultError(FaultKind::DeadlineExceeded, cluster, -1,
                       "simulated-cycle deadline exceeded");
    }
    ok = true;
  } catch (const IntegrityError& e) {
    // Unrepairable checksum damage: a transient data fault. Record the
    // detection here (the dispatch produced no result to copy it from);
    // handle_fault counts the recompute when it re-dispatches.
    rs.sdc_detected = static_cast<std::uint64_t>(e.detected());
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      sdc_detected_ += rs.sdc_detected;
    }
    err = std::current_exception();
    is_fault = true;
  } catch (const FaultError&) {
    err = std::current_exception();
    is_fault = true;
  } catch (...) {
    err = std::current_exception();
  }
  rs.exec_ms = ms_between(t_start, std::chrono::steady_clock::now());
  rs.fault = is_fault;
  if (ok) {
    rs.sim_cycles = result.cycles;
    rs.strategy = result.strategy;
    rs.dtype = result.dtype;
    rs.strassen_levels = result.strassen_levels;
    if (result.dtype != kernelgen::DType::F32) {
      FTM_TRACE_COUNTER("kernel.dtype", static_cast<int>(result.dtype));
    }
    if (result.strassen_levels > 0) {
      FTM_TRACE_COUNTER("strassen.levels", result.strassen_levels);
    }
    rs.host_wall_us = result.host_wall_us;
    rs.checksum_checks = result.checksum_checks;
    rs.sdc_detected = result.sdc_detected;
    rs.sdc_corrected = result.sdc_corrected;
    if (result.checksum_checks > 0 || result.sdc_detected > 0) {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      checksum_checks_ += result.checksum_checks;
      sdc_detected_ += result.sdc_detected;
      sdc_corrected_ += result.sdc_corrected;
    }
    if (req->reuse_panel_bytes > 0) {
      // Shared-operand reuse: a batch-mate already staged this A/B panel
      // on the cluster, so this dispatch is not charged its DMA bytes.
      const std::uint64_t save =
          std::min(req->reuse_panel_bytes, result.ddr_bytes);
      result.ddr_bytes -= save;
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        batch_ddr_saved_ += save;
      }
      FTM_TRACE_COUNTER("runtime.batch_ddr_saved", save);
    }
  }
#if FTM_TRACE_ENABLED
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    const std::uint64_t t0 = ts->host_us(req->submit_time);
    const std::uint64_t t1 = ts->host_us(t_start);
    trace::Event q;
    q.name = "queued";
    q.cat = "request";
    q.ts = t0;
    q.dur = t1 > t0 ? t1 - t0 : 0;
    q.cluster = cluster;
    q.track = trace::TrackKind::Runtime;
    q.arg("id", req->id);
    ts->record(q);
    trace::Event x;
    x.name = "execute";
    x.cat = "request";
    x.ts = t1;
    x.dur = ts->host_now_us() - t1;
    x.cluster = cluster;
    x.track = trace::TrackKind::Runtime;
    x.arg("id", req->id);
    x.arg("plan_hit", rs.plan_cache_hit ? 1 : 0);
    x.arg("sim_cycles", rs.sim_cycles);
    x.arg("attempt", static_cast<std::uint64_t>(rs.attempt));
    x.arg("fault", is_fault ? 1 : 0);
    ts->record(x);
    ts->count(rs.plan_cache_hit ? "runtime.plan_hits"
                                : "runtime.plan_misses");
    if (stolen) ts->count("runtime.steals");
  }
#endif
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++executed_;
    ++cs.requests;
    if (stolen) ++steals_;
    if (ok) {
      if (req->node_tier) {
        // Node-tier cycles live in the node layer's clock domain: do not
        // charge host-cluster lanes, and keep them out of the per-class
        // EWMA that predicts *cluster* latency for admission.
        rs.finish_cycle = req->arrival_cycle + result.cycles;
      } else {
        rs.finish_cycle = charge_lanes(cs, *req, result.cycles);
        // Per-shape-class EWMA of successful execution cycles; the
        // deadline admission's execution estimate
        // (predict_latency_cycles).
        double& e = class_cycles_[req->cls];
        e = e == 0 ? static_cast<double>(result.cycles)
                   : 0.7 * e + 0.3 * static_cast<double>(result.cycles);
      }
    }
  }
  if (ok) {
    if (res.enabled) record_success(cluster);
    // Log before deliver: a caller woken by future::get() may read
    // request_log() immediately and must see this request's entry.
    log_request(rs);
    deliver(*req, result);
    queue_.finished(cluster, flops);
    return;
  }
  if (is_fault) {
    record_failure(cluster);
    if (res.enabled) {
      handle_fault(cluster, std::move(req), err, rs);
    } else {
      fail(std::move(req), err, rs);
    }
  } else {
    // Deterministic error (e.g. a ContractViolation from deep inside the
    // engine): retrying cannot help and must not mask a bug.
    fail(std::move(req), err, rs);
  }
  queue_.finished(cluster, flops);
}

void GemmRuntime::handle_fault(int cluster, std::unique_ptr<Request> req,
                               std::exception_ptr err, RequestStats& rs) {
  const ResilienceOptions& res = ro_.resilience;
  req->tried.push_back(cluster);
  if (req->attempts <= res.max_retries) {
    if (wall_deadline_passed(*req)) {
      rs.deadline_missed = true;
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++deadline_misses_;
      }
      FTM_TRACE_COUNTER("runtime.deadline_misses", 1);
      fail(std::move(req),
           std::make_exception_ptr(FaultError(
               FaultKind::DeadlineExceeded, cluster, -1,
               "wall-clock deadline exceeded during retries")),
           rs);
      return;
    }
    const int target = pick_retry_target(*req);
    if (target >= 0) {
      const double delay_ms =
          res.backoff_ms *
          std::pow(res.backoff_multiplier, req->attempts - 1);
      // Interruptible: a shutdown cuts the backoff short, and the
      // try_push below then fails over to the terminal paths.
      if (delay_ms > 0) {
        queue_.wait_stop_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      restore_c(*req);
      // A retry lands alone (usually on a different cluster): the shared
      // panel its batch-mate staged is not there, so the DMA discount no
      // longer applies. The shared plan stays valid — plans are
      // cluster-independent.
      req->reuse_panel_bytes = 0;
      req->bound_cluster = target;
      if (queue_.try_push(target, req)) {
        {
          const std::lock_guard<std::mutex> lock(stats_mu_);
          ++retries_;
          // A faulted dispatch with detections is an IntegrityError
          // escalation: the re-dispatch recomputes the damaged block.
          if (rs.fault && rs.sdc_detected > 0) ++recomputed_shards_;
        }
        FTM_TRACE_COUNTER("runtime.retries", 1);
        if (rs.fault && rs.sdc_detected > 0) {
          FTM_TRACE_COUNTER("integrity.recomputed", 1);
        }
        log_request(rs);  // the faulted attempt; the retry logs its own row
        return;
      }
    }
  }
  // Retries exhausted, no healthy cluster left, or the queue shut down.
  if (res.cpu_fallback) {
    if (rs.fault && rs.sdc_detected > 0) {
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++recomputed_shards_;
      }
      FTM_TRACE_COUNTER("integrity.recomputed", 1);
    }
    run_cpu_fallback(std::move(req), rs);
    return;
  }
  fail(std::move(req), err, rs);
}

void GemmRuntime::run_cpu_fallback(std::unique_ptr<Request> req,
                                   RequestStats& rs) {
  rs.cpu_fallback = true;
  restore_c(*req);
  core::GemmResult r;
  r.cpu_fallback = true;
  // No simulated cycles: the host CPU is outside the DSP cycle model, so
  // the result carries the correctness payload (C) and the flag only.
  try {
    if (req->opt.functional && req->in.c.data() != nullptr) {
      cpu::cpu_gemm(req->in.a, req->in.b, req->in.c);
    }
  } catch (...) {
    fail(std::move(req), std::current_exception(), rs);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++fallbacks_;
  }
  FTM_TRACE_COUNTER("runtime.fallbacks", 1);
  trace_instant("cpu_fallback", rs.cluster);
  log_request(rs);
  deliver(*req, r);
}

void GemmRuntime::fail(std::unique_ptr<Request> req, std::exception_ptr err,
                       RequestStats& rs) {
  rs.failed = true;
  restore_c(*req);  // a failed request leaves C exactly as submitted
  log_request(rs);  // before the promise wakes the waiter
  note_batch_member_done(*req);
  if (!req->group) {
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++failed_;
    }
    req->promise.set_exception(err);
    return;
  }
  SplitGroup& g = *req->group;
  const std::lock_guard<std::mutex> lock(g.mu);
  --g.remaining;
  if (!g.failed) {
    g.failed = true;
    {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      ++failed_;
    }
    g.promise.set_exception(err);
  }
}

void GemmRuntime::divert(int cluster, std::unique_ptr<Request> req) {
  const double flops = req->in.flops();
  const int target = queue_.least_loaded();
  if (target != cluster && queue_.enabled(target)) {
    req->bound_cluster = target;
    if (queue_.try_push(target, req)) {
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++rerouted_;
      }
      FTM_TRACE_COUNTER("runtime.rerouted", 1);
      queue_.finished(cluster, flops);
      return;
    }
  }
  // No healthy cluster, or shutdown drain: run it here anyway — quarantine
  // is routing policy, and the fault paths still protect the result.
  process(cluster, std::move(req), false);
}

void GemmRuntime::probe(int cluster) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++clusters_[static_cast<std::size_t>(cluster)].health.probes;
  }
  FTM_TRACE_COUNTER("runtime.probes", 1);
  const ResilienceOptions& res = ro_.resilience;
  bool alive = false;
  try {
    // Timing-only canary GEMM on one core: exercises the dead-cluster
    // check, the DMA fault path, and (against deadline_cycles) the stall
    // scaling, without touching caller data or the lane clocks.
    core::FtimmOptions opt = ro_.gemm;
    opt.functional = false;
    opt.cores = 1;
    const core::GemmInput in = core::GemmInput::shape_only(64, 64, 64);
    ClusterState& cs = clusters_[static_cast<std::size_t>(cluster)];
    const core::GemmPlan plan = cs.engine->plan(in.m, in.n, in.k, opt);
    const core::GemmResult r = cs.engine->sgemm_planned(in, plan, opt);
    alive = res.deadline_cycles == 0 || r.cycles <= res.deadline_cycles;
  } catch (...) {
    alive = false;
  }
  if (!alive) return;
  std::chrono::steady_clock::time_point since{};
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    Health& h = clusters_[static_cast<std::size_t>(cluster)].health;
    if (!h.quarantined) return;
    h.quarantined = false;
    h.consecutive = 0;
    since = h.since;
  }
  queue_.set_enabled(cluster, true);
  FTM_TRACE_COUNTER("runtime.recoveries", 1);
#if FTM_TRACE_ENABLED
  if (trace::TraceSession* ts = trace::TraceSession::current()) {
    trace::Event e;
    e.name = "quarantined";
    e.cat = "health";
    e.ts = ts->host_us(since);
    const std::uint64_t now = ts->host_now_us();
    e.dur = now > e.ts ? now - e.ts : 0;
    e.cluster = cluster;
    e.track = trace::TrackKind::Runtime;
    ts->record(e);
  }
#endif
}

void GemmRuntime::record_success(int cluster) {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  clusters_[static_cast<std::size_t>(cluster)].health.consecutive = 0;
}

void GemmRuntime::record_failure(int cluster) {
  const ResilienceOptions& res = ro_.resilience;
  bool trip = false;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++faults_;
    Health& h = clusters_[static_cast<std::size_t>(cluster)].health;
    ++h.failures;
    ++h.consecutive;
    if (res.enabled && res.quarantine_after > 0 && !h.quarantined &&
        h.consecutive >= res.quarantine_after) {
      h.quarantined = true;
      ++h.quarantines;
      h.since = std::chrono::steady_clock::now();
      trip = true;
    }
  }
  FTM_TRACE_COUNTER("runtime.faults", 1);
  if (trip) {
    queue_.set_enabled(cluster, false);
    FTM_TRACE_COUNTER("runtime.quarantines", 1);
    trace_instant("quarantine", cluster);
  }
}

int GemmRuntime::pick_retry_target(const Request& req) const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  const int last = req.tried.empty() ? -1 : req.tried.back();
  const auto tried = [&](int c) {
    return std::find(req.tried.begin(), req.tried.end(), c) !=
           req.tried.end();
  };
  // Prefer a healthy cluster this request has not faulted on; then any
  // healthy cluster other than the one that just failed; the just-failed
  // cluster itself only when it is the sole healthy one left.
  int fallback = -1;
  for (int c = 0; c < clusters(); ++c) {
    if (clusters_[static_cast<std::size_t>(c)].health.quarantined) continue;
    if (!tried(c)) return c;
    if (fallback < 0 && c != last) fallback = c;
  }
  if (fallback >= 0) return fallback;
  if (last >= 0 &&
      !clusters_[static_cast<std::size_t>(last)].health.quarantined) {
    return last;
  }
  return -1;
}

bool GemmRuntime::wall_deadline_passed(const Request& req) const {
  const double budget = ro_.resilience.deadline_ms;
  if (budget <= 0) return false;
  return ms_between(req.submit_time, std::chrono::steady_clock::now()) >
         budget;
}

void GemmRuntime::snapshot_c(Request& req) const {
  const MatrixView& c = req.in.c;
  if (!req.opt.functional || c.data() == nullptr) return;
  req.c_snapshot.resize(c.rows() * c.cols());
  for (std::size_t r = 0; r < c.rows(); ++r) {
    std::memcpy(req.c_snapshot.data() + r * c.cols(), c.row(r),
                c.cols() * sizeof(float));
  }
}

void GemmRuntime::restore_c(Request& req) const {
  const MatrixView& c = req.in.c;
  if (req.c_snapshot.empty() || c.data() == nullptr) return;
  for (std::size_t r = 0; r < c.rows(); ++r) {
    std::memcpy(c.row(r), req.c_snapshot.data() + r * c.cols(),
                c.cols() * sizeof(float));
  }
}

void GemmRuntime::log_request(const RequestStats& rs) {
  if (!ro_.keep_request_log) return;
  const std::lock_guard<std::mutex> lock(stats_mu_);
  log_.push_back(rs);
}

std::uint64_t GemmRuntime::charge_lanes(ClusterState& cs,
                                        const Request& req,
                                        std::uint64_t cycles) {
  const int total = static_cast<int>(cs.lanes.size());
  const int limit = std::clamp(
      req.lane_limit > 0 ? req.lane_limit : req.opt.cores, 1, total);
  const int width = std::min(req.opt.cores, limit);
  std::vector<int> idx(static_cast<std::size_t>(limit));
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return cs.lanes[static_cast<std::size_t>(a)] <
           cs.lanes[static_cast<std::size_t>(b)];
  });
  // Floored at the virtual arrival: work cannot start before it exists.
  // arrival_cycle == 0 (the default) keeps the pre-QoS charging exactly.
  std::uint64_t start = req.arrival_cycle;
  for (int i = 0; i < width; ++i) {
    start = std::max(start, cs.lanes[static_cast<std::size_t>(idx[i])]);
  }
  for (int i = 0; i < width; ++i) {
    cs.lanes[static_cast<std::size_t>(idx[i])] = start + cycles;
  }
  return start + cycles;
}

void GemmRuntime::deliver(Request& req, const core::GemmResult& r) {
  note_batch_member_done(req);
  // completed_ is bumped before the promise is fulfilled so a caller that
  // wakes from future::get() observes a consistent stats() snapshot.
  if (!req.group) {
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++completed_;
    }
    req.promise.set_value(r);
    return;
  }
  SplitGroup& g = *req.group;
  const std::lock_guard<std::mutex> lock(g.mu);
  core::GemmResult& m = g.merged;
  m.cycles = std::max(m.cycles, r.cycles);  // shards run concurrently
  m.ddr_bytes += r.ddr_bytes;
  m.kernel_calls += r.kernel_calls;
  m.strategy = r.strategy;
  m.cores = r.cores;
  m.cpu_fallback = m.cpu_fallback || r.cpu_fallback;
  if (--g.remaining == 0 && !g.failed) {
#if FTM_TRACE_ENABLED
    if (trace::TraceSession* ts = trace::TraceSession::current()) {
      trace::Event e;
      e.name = "merged";
      e.cat = "request";
      e.ts = ts->host_now_us();
      e.track = trace::TrackKind::Runtime;
      e.arg("shards", static_cast<std::uint64_t>(g.shards));
      e.arg("cycles", m.cycles);
      ts->record(e);
    }
#endif
    m.seconds = static_cast<double>(m.cycles) / (mc_.freq_ghz * 1e9);
    m.gflops = m.seconds > 0 ? g.flops / m.seconds / 1e9 : 0.0;
    const double peak = mc_.core_peak_gflops() *
                        static_cast<double>(m.cores) *
                        static_cast<double>(g.shards);
    m.efficiency = peak > 0 ? m.gflops / peak : 0.0;
    {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      ++completed_;
    }
    g.promise.set_value(m);
  }
}

BatchResult GemmRuntime::run_all(std::span<const core::GemmInput> problems) {
  return run_all(problems, ro_.gemm);
}

BatchResult GemmRuntime::run_all(std::span<const core::GemmInput> problems,
                                 const core::FtimmOptions& opt) {
  validate(opt);
  const int NC = clusters();
  BatchResult br;
  br.problems = problems.size();
  br.cluster_cycles.assign(static_cast<std::size_t>(NC), 0);
  if (problems.empty()) return br;
  wait_idle();
  reset_clocks();

  // The batch schedule below balances simulated lane clocks per cluster;
  // letting host-time-idle workers steal would break it (simulation speed
  // has nothing to do with simulated load). Suspend stealing until every
  // future has resolved.
  struct StealGuard {
    RequestQueue& q;
    ~StealGuard() { q.set_stealing(true); }
  } guard{queue_};
  queue_.set_stealing(false);

  std::vector<std::size_t> wide, small;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    br.flops += problems[i].flops();
    if (problems[i].flops() >= opt.wide_problem_flops && opt.cores > 1) {
      wide.push_back(i);
    } else {
      small.push_back(i);
    }
  }
  br.wide_problems = wide.size();
  br.small_problems = small.size();

  std::vector<std::future<core::GemmResult>> futs;
  futs.reserve(problems.size());
  auto enqueue = [&](const core::GemmInput& in,
                     const core::FtimmOptions& o, int c, int lane_limit) {
    auto r = make_request(in, o);
    // run_all has no per-request QoS; the Normal-class integrity floor
    // still applies (batch work is not exempt from the ABFT policy).
    r->opt.integrity = effective_integrity(o, QosOptions{});
    r->lane_limit = lane_limit;
    r->bound_cluster = c;
    futs.push_back(r->promise.get_future());
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++submitted_;
    }
    queue_.push(c, std::move(r));
  };

  // Wide problems occupy a whole cluster each, serially; greedy placement
  // onto the cluster with the least wide flops so far.
  std::vector<double> assigned(static_cast<std::size_t>(NC), 0.0);
  for (const std::size_t i : wide) {
    int c = 0;
    for (int j = 1; j < NC; ++j) {
      if (assigned[j] < assigned[c]) c = j;
    }
    assigned[c] += problems[i].flops();
    enqueue(problems[i], opt, c, opt.cores);
  }

  // Small problems run one core each, round-robin over clusters; each
  // cluster packs its share onto W lanes with DDR bandwidth shared W ways
  // (W = min(cores, smalls on that cluster) — the sgemm_batched model).
  std::vector<std::size_t> small_count(static_cast<std::size_t>(NC), 0);
  for (std::size_t idx = 0; idx < small.size(); ++idx) {
    ++small_count[idx % static_cast<std::size_t>(NC)];
  }
  for (std::size_t idx = 0; idx < small.size(); ++idx) {
    const int c = static_cast<int>(idx % static_cast<std::size_t>(NC));
    const int W = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(opt.cores),
        std::max<std::size_t>(1, small_count[static_cast<std::size_t>(c)])));
    core::FtimmOptions sub = opt;
    sub.cores = 1;
    sub.bandwidth_share = W;
    enqueue(problems[small[idx]], sub, c, W);
  }

  // Resolve every future before rethrowing, so a failure never leaves
  // sibling requests racing against this frame's teardown.
  std::exception_ptr first_err;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_err) first_err = std::current_exception();
    }
  }
  if (first_err) std::rethrow_exception(first_err);

  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    for (int c = 0; c < NC; ++c) {
      std::uint64_t mk = 0;
      for (const std::uint64_t t : clusters_[c].lanes) mk = std::max(mk, t);
      br.cluster_cycles[c] = mk;
      br.cycles = std::max(br.cycles, mk);
    }
  }
  br.seconds = static_cast<double>(br.cycles) / (mc_.freq_ghz * 1e9);
  br.gflops = br.seconds > 0 ? br.flops / br.seconds / 1e9 : 0.0;
  return br;
}

void GemmRuntime::wait_idle() {
  flush_batches();  // held members must enter the queue to be waited on
  queue_.wait_idle();
}

core::FtimmEngine& GemmRuntime::engine(int cluster) {
  FTM_EXPECTS(cluster >= 0 && cluster < clusters());
  return *clusters_[static_cast<std::size_t>(cluster)].engine;
}

bool GemmRuntime::quarantined(int cluster) const {
  FTM_EXPECTS(cluster >= 0 && cluster < clusters());
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return clusters_[static_cast<std::size_t>(cluster)].health.quarantined;
}

RuntimeStats GemmRuntime::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  RuntimeStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.executed = executed_;
  s.plan_hits = plans_.hits();
  s.plan_misses = plans_.misses();
  s.tuned_plans = tuned_plans_;
  s.steals = steals_;
  s.splits = splits_;
  s.faults = faults_;
  s.retries = retries_;
  s.fallbacks = fallbacks_;
  s.deadline_misses = deadline_misses_;
  s.rerouted = rerouted_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.rejected = rejected_;
  s.batch_ddr_saved_bytes = batch_ddr_saved_;
  s.checksum_checks = checksum_checks_;
  s.sdc_detected = sdc_detected_;
  s.sdc_corrected = sdc_corrected_;
  s.recomputed_shards = recomputed_shards_;
  s.node_dispatches = node_dispatches_;
  for (const auto& cs : clusters_) {
    s.cluster_requests.push_back(cs.requests);
    std::uint64_t mk = 0;
    for (const std::uint64_t t : cs.lanes) mk = std::max(mk, t);
    s.cluster_busy_cycles.push_back(mk);
    s.cluster_failures.push_back(cs.health.failures);
    s.cluster_quarantines.push_back(cs.health.quarantines);
    s.cluster_probes.push_back(cs.health.probes);
    s.cluster_quarantined.push_back(cs.health.quarantined);
  }
  return s;
}

std::vector<RequestStats> GemmRuntime::request_log() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return log_;
}

std::uint64_t GemmRuntime::makespan_cycles() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  std::uint64_t mk = 0;
  for (const auto& cs : clusters_) {
    for (const std::uint64_t t : cs.lanes) mk = std::max(mk, t);
  }
  return mk;
}

void GemmRuntime::reset_clocks() {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  for (auto& cs : clusters_) {
    std::fill(cs.lanes.begin(), cs.lanes.end(), 0);
  }
}

Table GemmRuntime::report() const {
  const RuntimeStats s = stats();
  std::vector<double> waits;
  std::vector<double> host_us;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    waits.reserve(log_.size());
    host_us.reserve(log_.size());
    for (const RequestStats& r : log_) {
      waits.push_back(r.queue_wait_ms);
      host_us.push_back(r.host_wall_us);
    }
  }
  Table t({"cluster", "requests", "busy_cycles", "plan_hits", "plan_misses",
           "tuned", "steals", "splits", "batches", "coalesced", "rejected",
           "faults", "retries", "fallbacks", "quarantines", "probes",
           "health", "wait_p50_ms", "wait_p95_ms", "host_p50_us",
           "host_p95_us"});
  std::uint64_t total_q = 0, total_p = 0;
  for (std::size_t c = 0; c < s.cluster_requests.size(); ++c) {
    total_q += s.cluster_quarantines[c];
    total_p += s.cluster_probes[c];
    t.begin_row()
        .cell(static_cast<long long>(c))
        .cell(static_cast<std::size_t>(s.cluster_requests[c]))
        .cell(static_cast<std::size_t>(s.cluster_busy_cycles[c]))
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell(static_cast<std::size_t>(s.cluster_failures[c]))
        .cell("")
        .cell("")
        .cell(static_cast<std::size_t>(s.cluster_quarantines[c]))
        .cell(static_cast<std::size_t>(s.cluster_probes[c]))
        .cell(s.cluster_quarantined[c] ? "quarantined" : "ok")
        .cell("")
        .cell("")
        .cell("")
        .cell("");
  }
  t.begin_row()
      .cell("all")
      .cell(static_cast<std::size_t>(s.executed))
      .cell(static_cast<std::size_t>(makespan_cycles()))
      .cell(static_cast<std::size_t>(s.plan_hits))
      .cell(static_cast<std::size_t>(s.plan_misses))
      .cell(static_cast<std::size_t>(s.tuned_plans))
      .cell(static_cast<std::size_t>(s.steals))
      .cell(static_cast<std::size_t>(s.splits))
      .cell(static_cast<std::size_t>(s.batches))
      .cell(static_cast<std::size_t>(s.coalesced))
      .cell(static_cast<std::size_t>(s.rejected))
      .cell(static_cast<std::size_t>(s.faults))
      .cell(static_cast<std::size_t>(s.retries))
      .cell(static_cast<std::size_t>(s.fallbacks))
      .cell(static_cast<std::size_t>(total_q))
      .cell(static_cast<std::size_t>(total_p))
      .cell("")
      .cell(percentile(waits, 50), 3)
      .cell(percentile(waits, 95), 3)
      .cell(percentile(host_us, 50), 1)
      .cell(percentile(host_us, 95), 1);
  return t;
}

}  // namespace ftm::runtime
