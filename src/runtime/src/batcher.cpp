#include "ftm/runtime/batcher.hpp"

#include <algorithm>

#include "ftm/util/assert.hpp"

namespace ftm::runtime {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::Latency: return "latency";
    case Priority::Normal: return "normal";
    case Priority::Bulk: return "bulk";
  }
  return "?";
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::DeadlineUnmeetable: return "deadline-unmeetable";
    case RejectReason::Shutdown: return "shutdown";
  }
  return "?";
}

Batcher::Batcher(const BatchOptions& bo) : bo_(bo) {
  FTM_EXPECTS(bo_.max_batch >= 1);
  FTM_EXPECTS(bo_.max_delay_ms >= 0);
  FTM_EXPECTS(bo_.max_held >= 1);
}

Batcher::Key Batcher::key_of(const Request& r) {
  Key k;
  k.cls = r.cls;
  k.functional = r.opt.functional;
  k.force = static_cast<int>(r.opt.force);
  k.dynamic_blocks = r.opt.dynamic_blocks;
  k.pingpong = r.opt.pingpong;
  k.tree_reduction = r.opt.tree_reduction;
  return k;
}

Batcher::Flush Batcher::pop_locked(
    std::map<Key, std::vector<std::unique_ptr<Request>>>::iterator it,
    const char* trigger) {
  Flush f;
  f.members = std::move(it->second);
  f.cls = it->first.cls;
  f.trigger = trigger;
  held_ -= f.members.size();
  pending_.erase(it);
  return f;
}

std::optional<Batcher::Flush> Batcher::add(std::unique_ptr<Request> req) {
  const std::lock_guard<std::mutex> lock(mu_);
  const Key k = key_of(*req);
  auto it = pending_.try_emplace(k).first;
  it->second.push_back(std::move(req));
  ++held_;
  if (static_cast<int>(it->second.size()) >= bo_.max_batch) {
    return pop_locked(it, "size");
  }
  if (held_ >= bo_.max_held) {
    // Pressure: flush the largest class (ties -> smallest key, so the
    // choice is deterministic for a deterministic submission order).
    auto largest = pending_.begin();
    for (auto j = pending_.begin(); j != pending_.end(); ++j) {
      if (j->second.size() > largest->second.size()) largest = j;
    }
    return pop_locked(largest, "pressure");
  }
  return std::nullopt;
}

std::vector<Batcher::Flush> Batcher::take_aged(
    std::chrono::steady_clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Flush> out;
  const auto budget =
      std::chrono::duration<double, std::milli>(bo_.max_delay_ms);
  for (auto it = pending_.begin(); it != pending_.end();) {
    FTM_EXPECTS(!it->second.empty());
    const auto oldest = it->second.front()->submit_time;
    if (now - oldest >= budget) {
      auto next = std::next(it);
      out.push_back(pop_locked(it, "age"));
      it = next;
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<Batcher::Flush> Batcher::take_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Flush> out;
  while (!pending_.empty()) {
    out.push_back(pop_locked(pending_.begin(), "flush"));
  }
  return out;
}

std::size_t Batcher::held() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return held_;
}

}  // namespace ftm::runtime
