// QoS and coalescing option types of the serving layer (ISSUE 7,
// docs/serving.md). Kept in their own header so request.hpp and
// stats.hpp can name them without pulling in the Batcher itself.
//
// Three ideas, one layer:
//
//  * Priority classes. Latency requests bypass the coalescing buffer and
//    jump to the front of their cluster's queue; Normal and Bulk requests
//    may be held briefly and dispatched as a batch. Under backpressure,
//    Bulk is shed first (it rejects at half the queue bound), Latency
//    last (it gets 1.5x the bound).
//
//  * Per-request deadlines feeding admission control. A request that the
//    makespan model predicts cannot meet its simulated-cycle deadline is
//    rejected at submit time instead of executing doomed: predicted
//    latency = (least-loaded cluster's lane frontier - arrival_cycle) +
//    an EWMA of recent same-shape-class execution cycles.
//
//  * Bounded queues. With BatchOptions::max_queue > 0, submissions beyond
//    the priority-scaled bound resolve with a typed
//    FaultError(FaultKind::Rejected) instead of growing the queue without
//    limit (try_submit() reports the RejectReason without the exception).
//
// Deadlines and arrivals are in *simulated* cycles on the runtime's lane
// clocks (virtual time), not host wall time: serving replay drives a
// virtual arrival clock (bench_runtime --replay, examples/serving --rps)
// and the cycle domain keeps admission deterministic. arrival_cycle = 0
// means "the epoch", i.e. the last reset_clocks().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "ftm/core/types.hpp"
#include "ftm/tune/shape_class.hpp"

namespace ftm::runtime {

/// Service class of one submission (see docs/serving.md).
enum class Priority : std::uint8_t {
  Latency,  ///< never coalesced, front-of-queue, last to be shed
  Normal,   ///< coalescible, FIFO, standard queue bound
  Bulk,     ///< coalescible, FIFO, first to be shed under pressure
};

const char* to_string(Priority p);

/// Per-request quality-of-service contract passed to submit()/try_submit().
struct QosOptions {
  Priority priority = Priority::Normal;
  /// Virtual submission time on the simulated lane clocks. The request's
  /// execution starts no earlier than this cycle (charge_lanes floors at
  /// it), so an open-loop replay can model arrival processes in simulated
  /// time. 0 = the epoch (always "already arrived").
  std::uint64_t arrival_cycle = 0;
  /// Simulated-latency budget from arrival_cycle to completion; 0 = none.
  /// Feeds admission control only: a request predicted to blow the budget
  /// is rejected at submit time (RejectReason::DeadlineUnmeetable); one
  /// that is admitted but finishes late is *not* failed — the caller
  /// accounts goodput from RequestStats::{arrival,finish}_cycle.
  std::uint64_t deadline_cycles = 0;
  /// Per-request ABFT floor (docs/robustness.md): merged with the GEMM
  /// options' own integrity mode and the runtime's per-priority-class
  /// policy — the *strongest* of the three wins, so a request can demand
  /// more protection than its class but never opt out of the class floor.
  core::IntegrityOptions integrity;
};

/// Why try_submit() refused a request. None = accepted.
enum class RejectReason : std::uint8_t {
  None,
  QueueFull,           ///< queued + held depth over the priority's bound
  DeadlineUnmeetable,  ///< predicted latency exceeds deadline_cycles
  Shutdown,            ///< runtime is draining; no new work accepted
};

const char* to_string(RejectReason r);

/// Knobs of the coalescing + admission layer (all inert unless `enabled`,
/// except max_queue/deadline admission which also guard uncoalesced
/// submissions). Defaults follow docs/serving.md's tuning guide.
struct BatchOptions {
  /// Master switch for coalescing. Off = every request dispatches alone
  /// (the pre-ISSUE-7 behavior, bit- and cycle-identical).
  bool enabled = false;
  /// Size flush trigger, and the cap on the packing width W: a class
  /// reaching max_batch held requests flushes immediately.
  int max_batch = 8;
  /// Age flush trigger (host wall-clock): a class whose oldest held
  /// request is older than this flushes even if alone. This bounds the
  /// latency cost of coalescing.
  double max_delay_ms = 0.25;
  /// Pressure flush trigger: when the total held across all classes
  /// reaches this, the largest class flushes (holding work while the
  /// buffer saturates only adds latency).
  std::size_t max_held = 64;
  /// Bounded-queue admission: reject when queued + held depth reaches the
  /// priority-scaled bound (Bulk: max_queue/2, Normal: max_queue,
  /// Latency: 1.5 * max_queue). 0 = unbounded (no QueueFull rejects).
  std::size_t max_queue = 0;
};

/// Shared bookkeeping of one flushed batch. Unlike SplitGroup, members
/// keep their *own* promises: a batch is a dispatch-level grouping, never
/// a failure domain — one member's fault retries that member alone and
/// cannot poison its batch-mates.
struct BatchGroup {
  std::uint64_t id = 0;           ///< 1-based flush order
  int size = 0;                   ///< members at flush time
  int width = 0;                  ///< packing width W (lanes shared)
  tune::ShapeClass cls;           ///< the coalescing key
  const char* trigger = "";       ///< "size" | "age" | "pressure" | "flush"
  /// A/B panel bytes of members whose operand was already staged by an
  /// earlier batch-mate (accounting of the shared-operand DMA reuse).
  std::uint64_t shared_panel_bytes = 0;
  std::atomic<int> remaining{0};  ///< members not yet resolved
};

}  // namespace ftm::runtime
