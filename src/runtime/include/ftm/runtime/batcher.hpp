// Batcher — the shape-class coalescing buffer of the serving layer
// (ISSUE 7, docs/serving.md).
//
// Coalescible requests (Normal/Bulk priority, below wide_problem_flops)
// are held here, grouped by their tune::ShapeClass key plus the
// plan-affecting FtimmOptions, and flushed as one batched dispatch when
// any trigger fires:
//
//   size     — a class reaches BatchOptions::max_batch (checked in add(),
//              so composition is deterministic under single-threaded
//              submission);
//   pressure — total held requests reach max_held; the largest class
//              flushes (checked in add());
//   age      — a class's oldest member exceeds max_delay_ms (checked by
//              the runtime's flusher thread via take_aged());
//   flush    — explicit drain: GemmRuntime::flush_batches(), wait_idle()
//              and the destructor call take_all().
//
// The Batcher only buffers; the dispatch itself (plan amortization,
// shared-operand accounting, lane packing) is GemmRuntime::dispatch_batch.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "ftm/runtime/qos.hpp"
#include "ftm/runtime/request.hpp"

namespace ftm::runtime {

class Batcher {
 public:
  /// One flushed batch, ready for dispatch; members are in submission
  /// (id) order.
  struct Flush {
    std::vector<std::unique_ptr<Request>> members;
    tune::ShapeClass cls;
    const char* trigger = "";
  };

  explicit Batcher(const BatchOptions& bo);

  /// Buffers `req` under its shape-class key (Request::cls, stamped at
  /// submit time). Returns a batch if the size or pressure trigger fired.
  std::optional<Flush> add(std::unique_ptr<Request> req);

  /// Every class whose oldest member is older than max_delay_ms at `now`.
  std::vector<Flush> take_aged(std::chrono::steady_clock::time_point now);

  /// Drains everything (trigger "flush").
  std::vector<Flush> take_all();

  /// Requests currently held (admission control counts these as queued).
  std::size_t held() const;

 private:
  /// Coalescing key: the shape class plus every FtimmOptions field that
  /// changes planning or execution — requests mixed under one key must be
  /// safely dispatchable with one shared plan policy.
  struct Key {
    tune::ShapeClass cls;
    bool functional = true;
    int force = 0;  ///< core::Strategy as int, to keep the key POD-simple
    bool dynamic_blocks = true;
    bool pingpong = true;
    bool tree_reduction = false;

    friend bool operator<(const Key& a, const Key& b) {
      if (!(a.cls == b.cls)) return a.cls < b.cls;
      if (a.functional != b.functional) return a.functional < b.functional;
      if (a.force != b.force) return a.force < b.force;
      if (a.dynamic_blocks != b.dynamic_blocks) {
        return a.dynamic_blocks < b.dynamic_blocks;
      }
      if (a.pingpong != b.pingpong) return a.pingpong < b.pingpong;
      return a.tree_reduction < b.tree_reduction;
    }
  };

  static Key key_of(const Request& r);
  Flush pop_locked(std::map<Key, std::vector<std::unique_ptr<Request>>>::
                       iterator it,
                   const char* trigger);

  BatchOptions bo_;
  mutable std::mutex mu_;
  std::map<Key, std::vector<std::unique_ptr<Request>>> pending_;
  std::size_t held_ = 0;
};

}  // namespace ftm::runtime
