// Observability types of the multi-cluster runtime: one lifecycle record
// per request plus aggregate counters. Snapshots are plain values so
// callers can diff them across phases without holding runtime locks.
#pragma once

#include <cstdint>
#include <vector>

#include "ftm/core/types.hpp"

namespace ftm::runtime {

/// Lifecycle of one executed request (or one shard of a split request).
struct RequestStats {
  std::uint64_t id = 0;          ///< submission order, 1-based
  int cluster = -1;              ///< cluster that executed it
  bool plan_cache_hit = false;   ///< strategy/block selection skipped
  bool stolen = false;           ///< executed by a cluster it was not bound to
  int shards = 0;                ///< > 0 when this request was split
  double queue_wait_ms = 0;      ///< host wall-clock submit -> dispatch
  double exec_ms = 0;            ///< host wall-clock dispatch -> done
  std::uint64_t sim_cycles = 0;  ///< simulated cluster cycles
  core::Strategy strategy = core::Strategy::Auto;
};

/// Aggregate counters; a consistent snapshot taken under the stats lock.
struct RuntimeStats {
  std::uint64_t submitted = 0;   ///< requests accepted (shards not counted)
  std::uint64_t completed = 0;   ///< requests whose future was fulfilled
  std::uint64_t executed = 0;    ///< dispatches, including shards
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t steals = 0;      ///< requests executed off their bound cluster
  std::uint64_t splits = 0;      ///< wide requests sharded across clusters
  std::vector<std::uint64_t> cluster_requests;     ///< dispatches per cluster
  std::vector<std::uint64_t> cluster_busy_cycles;  ///< max lane clock per cluster
};

}  // namespace ftm::runtime
