// Observability types of the multi-cluster runtime: one lifecycle record
// per request plus aggregate counters. Snapshots are plain values so
// callers can diff them across phases without holding runtime locks.
#pragma once

#include <cstdint>
#include <vector>

#include "ftm/core/types.hpp"
#include "ftm/runtime/qos.hpp"

namespace ftm::runtime {

/// Lifecycle of one dispatch (a request, one shard of a split request, or
/// one retry of either — each dispatch appends its own record).
struct RequestStats {
  std::uint64_t id = 0;          ///< submission order, 1-based
  int cluster = -1;              ///< cluster that executed it
  bool plan_cache_hit = false;   ///< strategy/block selection skipped
  bool tuned_plan = false;       ///< executed a tuner-provided plan
  bool stolen = false;           ///< executed by a cluster it was not bound to
  int shards = 0;                ///< > 0 when this request was split
  int attempt = 0;               ///< 0 = first dispatch, n = nth retry
  bool fault = false;            ///< dispatch ended in a FaultError
  bool deadline_missed = false;  ///< wall or simulated deadline blown
  bool cpu_fallback = false;     ///< resolved on the host CPU
  bool failed = false;           ///< resolved its future with an exception
  double queue_wait_ms = 0;      ///< host wall-clock submit -> dispatch
  double exec_ms = 0;            ///< host wall-clock dispatch -> done
  /// Host wall-µs inside the engine call itself (GemmResult::host_wall_us):
  /// exec_ms minus plan lookup and dispatch overhead. The host execution
  /// engine's speedup shows up here. 0 for CPU-fallback dispatches.
  double host_wall_us = 0;
  std::uint64_t sim_cycles = 0;  ///< simulated cluster cycles
  core::Strategy strategy = core::Strategy::Auto;
  /// Compute dtype the dispatch ran at (ISSUE 10, docs/precision.md).
  kernelgen::DType dtype = kernelgen::DType::F32;
  int strassen_levels = 0;  ///< recursion depth when strategy == Strassen
  // QoS / coalescing (ISSUE 7). finish_cycle - arrival_cycle is the
  // request's simulated latency; the replay benchmark computes goodput
  // from it against the deadline the caller assigned.
  Priority priority = Priority::Normal;
  std::uint64_t arrival_cycle = 0;  ///< virtual arrival (QosOptions)
  std::uint64_t finish_cycle = 0;   ///< lane clock when the dispatch ended
  bool node_dispatch = false;       ///< ran on the node tier (ISSUE 9)
  bool batched = false;             ///< dispatched as a batch member
  std::uint64_t batch_id = 0;       ///< flush order, 1-based; 0 = none
  int batch_size = 0;               ///< members in its batch at flush
  // ABFT integrity (ISSUE 8, docs/robustness.md). Counted per dispatch;
  // a recompute after an IntegrityError appends its own record.
  std::uint64_t checksum_checks = 0;  ///< row+col checksum comparisons
  std::uint64_t sdc_detected = 0;     ///< checksum mismatches observed
  std::uint64_t sdc_corrected = 0;    ///< elements repaired in place
};

/// Aggregate counters; a consistent snapshot taken under the stats lock.
struct RuntimeStats {
  std::uint64_t submitted = 0;   ///< requests accepted (shards not counted)
  std::uint64_t completed = 0;   ///< requests whose future got a value
  std::uint64_t failed = 0;      ///< requests whose future got an exception
  std::uint64_t executed = 0;    ///< dispatches, including shards/retries
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t tuned_plans = 0;  ///< dispatches that ran a tuned plan
  std::uint64_t steals = 0;      ///< requests executed off their bound cluster
  std::uint64_t splits = 0;      ///< wide requests sharded across clusters
  // Resilience counters. `faults` counts every dispatch that ended in a
  // FaultError (non-zero with an injector even when resilience is off);
  // the rest are zero unless ResilienceOptions::enabled.
  std::uint64_t faults = 0;           ///< dispatches that hit a FaultError
  std::uint64_t retries = 0;          ///< re-dispatches after a fault
  std::uint64_t fallbacks = 0;        ///< requests resolved on the host CPU
  std::uint64_t deadline_misses = 0;  ///< wall or simulated deadline blown
  std::uint64_t rerouted = 0;         ///< drained off a quarantined cluster
  // Coalescing + admission counters (ISSUE 7). `rejected` submissions are
  // not counted in `submitted`: they never entered the queue.
  std::uint64_t batches = 0;    ///< batch flushes dispatched (any size)
  std::uint64_t coalesced = 0;  ///< requests dispatched in a batch of >= 2
  std::uint64_t rejected = 0;   ///< submissions refused by admission control
  std::uint64_t batch_ddr_saved_bytes = 0;  ///< shared-operand DMA reuse
  // ABFT integrity counters (ISSUE 8). `sdc_detected` counts checksum
  // mismatches across all dispatches (corrected or not);
  // `recomputed_shards` counts dispatches re-executed because an
  // IntegrityError escalated through the resilience path.
  std::uint64_t checksum_checks = 0;
  std::uint64_t sdc_detected = 0;
  std::uint64_t sdc_corrected = 0;
  std::uint64_t recomputed_shards = 0;
  /// Dispatches routed to the node tier (RuntimeOptions::nodes, ISSUE 9).
  std::uint64_t node_dispatches = 0;
  std::vector<std::uint64_t> cluster_requests;     ///< dispatches per cluster
  /// Max lane clock per cluster.
  std::vector<std::uint64_t> cluster_busy_cycles;
  // Per-cluster health (circuit breaker) state.
  std::vector<std::uint64_t> cluster_failures;     ///< faults charged to it
  std::vector<std::uint64_t> cluster_quarantines;  ///< times quarantined
  std::vector<std::uint64_t> cluster_probes;       ///< recovery probes run
  std::vector<bool> cluster_quarantined;           ///< currently quarantined
};

}  // namespace ftm::runtime
