// Multi-node dispatch tier interface (ISSUE 9, docs/scaleout.md).
//
// The scale-out layer (src/nodes/) shards one very large GEMM across N
// modeled FT-m7032 processors joined by a cost-modeled interconnect. The
// runtime stays ignorant of how: like core::PlanProvider, the interface
// lives on the runtime side so src/runtime never depends on src/nodes.
// Install an implementation via RuntimeOptions::nodes and submissions at
// or above RuntimeOptions::node_problem_flops dispatch through it instead
// of the single-processor cluster/split paths.
//
// Contract: run() either returns a completed GemmResult (cycles in the
// node layer's own clock domain — they are *not* charged to the host
// runtime's cluster lanes) or throws. A thrown ftm::FaultError is
// transient (e.g. every node dead) and flows through the runtime's normal
// resilience path — bounded retries, then host-CPU fallback — so a
// node-tier future still always resolves. run() may be called from any
// worker thread; implementations serialize internally if they must.
#pragma once

#include "ftm/core/types.hpp"

namespace ftm::runtime {

class NodeTier {
 public:
  virtual ~NodeTier() = default;

  /// Executes one GEMM across the node grid.
  virtual core::GemmResult run(const core::GemmInput& in,
                               const core::FtimmOptions& opt) = 0;

  /// Total nodes in the grid (dead or alive), for reporting.
  virtual int nodes() const = 0;
};

}  // namespace ftm::runtime
