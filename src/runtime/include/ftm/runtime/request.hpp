// The runtime's unit of work and the thread-safe queue that moves it.
//
// RequestQueue keeps one FIFO deque per cluster under a single lock (a
// request costs milliseconds of simulation, so queue contention is
// irrelevant) and implements work stealing in pop(): a worker whose own
// deque is empty takes the *newest* request of the most-loaded other
// cluster — newest because older entries are about to be reached by their
// own worker anyway. Batch members are never stolen: a flushed batch's
// cycle model (lane packing, shared-operand reuse) assumes co-location on
// one cluster, so a victim whose newest entry is a batch member is
// skipped. Load is tracked in flops and includes the request a
// worker is currently executing, so submit-side binding and idle-cluster
// detection see in-flight work, not just queued work.
//
// Quarantine support (ISSUE 3): a cluster can be disabled, which removes
// it from least_loaded()/idle_clusters() binding decisions and makes it
// invisible to work stealing. Its own worker can still pop its deque —
// that is how a quarantined cluster drains already-queued work (the
// runtime re-routes each drained request to a healthy cluster).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "ftm/core/types.hpp"
#include "ftm/runtime/qos.hpp"

namespace ftm::core {
struct GemmPlan;
}

namespace ftm::runtime {

/// Shared completion state of a wide request split across clusters: the
/// last shard to finish resolves the parent promise with the merged
/// result (makespan = max shard cycles, traffic/kernel counts summed).
/// With retries enabled, a faulted shard is re-dispatched to another
/// cluster instead of failing the group; `failed` is only set once a
/// shard exhausts its retries, and late sibling shards then account/exit
/// without touching the already-resolved promise.
struct SplitGroup {
  std::mutex mu;
  std::promise<core::GemmResult> promise;
  int remaining = 0;       ///< shards still running
  int shards = 0;
  double flops = 0;        ///< of the parent problem
  core::GemmResult merged;
  bool failed = false;     ///< a shard already delivered an exception
};

struct Request {
  std::uint64_t id = 0;
  core::GemmInput in;
  core::FtimmOptions opt;
  /// Lanes of the executing cluster this request may occupy: it takes the
  /// opt.cores least-loaded of lanes [0, lane_limit). run_all() sets
  /// lane_limit to the small-phase width W so single-core requests stack
  /// on W lanes exactly like the batched scheduling model.
  int lane_limit = 0;  ///< 0 = opt.cores
  int bound_cluster = -1;
  std::promise<core::GemmResult> promise;     ///< unused when group is set
  std::shared_ptr<SplitGroup> group;          ///< non-null for shards
  std::chrono::steady_clock::time_point submit_time;
  // QoS / coalescing (ISSUE 7, docs/serving.md). A request is a split
  // shard (group) or a batch member (batch) or neither, never both: only
  // sub-wide problems coalesce and only wide ones split.
  Priority priority = Priority::Normal;
  /// Virtual arrival on the lane clocks; execution starts no earlier.
  std::uint64_t arrival_cycle = 0;
  /// Shape class stamped at submit time (from the *caller's* opt.cores,
  /// before any batch repacking) — the coalescing and EWMA key.
  tune::ShapeClass cls;
  /// Non-null for members of a flushed batch. Purely shared bookkeeping:
  /// each member still resolves its own promise and retries alone.
  std::shared_ptr<BatchGroup> batch;
  /// Plan computed once at batch-flush time and shared by every same-shape
  /// member ("one plan lookup"); run_on_cluster uses it and skips the
  /// per-dispatch cache probe.
  std::shared_ptr<const core::GemmPlan> preplanned;
  /// DDR bytes this member's dispatch saves because an earlier batch-mate
  /// already staged the same A/B panel on the target cluster. Cleared on
  /// retry (a re-dispatch lands on a different cluster).
  std::uint64_t reuse_panel_bytes = 0;
  /// Dispatch through RuntimeOptions::nodes (ISSUE 9): the whole problem
  /// runs on the node tier's grid; lane clocks are not charged (the node
  /// layer keeps its own clock domain) and retries re-enter the tier.
  bool node_tier = false;
  // Resilience bookkeeping (ISSUE 3).
  int attempts = 0;          ///< dispatches so far (1 = first execution)
  std::vector<int> tried;    ///< clusters that faulted on this request
  /// Pre-submit contents of the C view (row-major), captured when
  /// resilience is on and the request is functional: C += A*B is not
  /// idempotent, so a retry/fallback must restore C before re-running,
  /// and a failed request must leave C untouched.
  std::vector<float> c_snapshot;
};

class RequestQueue {
 public:
  /// Outcome of a timed pop. Shutdown is only returned once the queue is
  /// stopped *and* the popping cluster's own deque has drained.
  enum class PopResult { Item, Timeout, Shutdown };

  explicit RequestQueue(int clusters);

  /// Enqueues onto `cluster`'s deque and wakes one worker. `front` jumps
  /// the FIFO (Priority::Latency submissions).
  void push(int cluster, std::unique_ptr<Request> r, bool front = false);

  /// Like push, but returns false (leaving `r` untouched) when the queue
  /// has been shut down — used by the retry path, which races shutdown.
  bool try_push(int cluster, std::unique_ptr<Request>& r);

  /// Blocks until work is available for `cluster` (own deque first, then —
  /// when allow_steal — the newest request of the most-loaded enabled
  /// victim) or the queue is shut down *and* fully drained; returns
  /// nullptr only then. The popped request counts toward `cluster`'s
  /// executing load until finished() is called. *stolen reports a
  /// cross-cluster pop.
  std::unique_ptr<Request> pop(int cluster, bool allow_steal, bool* stolen);

  /// pop() with a timeout: quarantined workers use this to alternate
  /// between draining their deque and running recovery probes.
  PopResult pop_wait(int cluster, bool allow_steal,
                     std::chrono::milliseconds timeout,
                     std::unique_ptr<Request>* out, bool* stolen);

  /// Marks a popped request done, releasing its load accounting.
  void finished(int cluster, double flops);

  /// Enabled cluster with the least queued+executing flops; falls back to
  /// the least-loaded cluster overall when every cluster is disabled
  /// (ties -> lowest id).
  int least_loaded() const;

  /// Enabled clusters with no queued and no executing work, in id order.
  std::vector<int> idle_clusters() const;

  /// Quarantine hook: a disabled cluster receives no new bindings and
  /// cannot be stolen from; its own worker may still pop (to drain).
  void set_enabled(int cluster, bool enabled);
  bool enabled(int cluster) const;

  /// Blocks until every deque is empty and no request is executing.
  void wait_idle() const;

  /// After shutdown, workers drain remaining requests and then pop()
  /// returns nullptr. Push is rejected (contract violation; see try_push).
  void shutdown();
  bool stopped() const;

  /// Interruptible sleep for retry backoff: returns true (early) if the
  /// queue is shut down before `d` elapses. Fractional milliseconds are
  /// honored — default backoffs are well under 1 ms.
  bool wait_stop_for(std::chrono::duration<double, std::milli> d) const;

  /// Globally enables/disables stealing (overrides pop's allow_steal).
  /// run_all() suspends stealing so its statically computed schedule is
  /// executed exactly: workers race in host time, not simulated time, so
  /// a steal would move work off the cluster whose lane clocks it was
  /// balanced against.
  void set_stealing(bool enabled);

  std::size_t pending() const;

 private:
  /// Dequeue for `cluster` (own deque, then an enabled steal victim);
  /// returns nullptr when nothing is takeable. Caller holds mu_.
  std::unique_ptr<Request> take_locked(int cluster, bool allow_steal,
                                       bool* stolen);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_work_;   ///< workers wait here
  mutable std::condition_variable cv_idle_;   ///< wait_idle waits here
  std::vector<std::deque<std::unique_ptr<Request>>> qs_;
  std::vector<double> load_flops_;  ///< queued + executing, per cluster
  std::vector<int> executing_;      ///< requests in flight, per cluster
  std::vector<char> disabled_;      ///< quarantined clusters
  bool stop_ = false;
  bool steal_enabled_ = true;
};

}  // namespace ftm::runtime
