// GemmRuntime — the multi-cluster async GEMM runtime.
//
// Models a full FT-m7032: four GPDSP clusters (default) fed from a host
// that submits irregular GEMMs concurrently. Each cluster is one
// FtimmEngine (own simulated Cluster, shared thread-safe KernelCache)
// driven by one std::thread. Four layers ride on top of the single-call
// engine API:
//
//  * an async request queue: submit() returns a std::future<GemmResult>,
//    requests bind to the least-loaded cluster and idle workers steal;
//  * a shape-keyed plan cache: repeated shapes skip choose_strategy and
//    block adjustment (plan_cache.hpp);
//  * wide-problem splitting: a submission above wide_problem_flops is
//    sharded row-wise across currently idle clusters and its future
//    resolves with the merged result;
//  * shape-class coalescing + admission control (ISSUE 7, docs/serving.md):
//    with BatchOptions::enabled, Normal/Bulk sub-wide requests are held
//    briefly in a Batcher keyed by tune::ShapeClass and flushed (on
//    size/age/pressure) as one batched dispatch — one plan lookup per
//    distinct shape, shared-operand DMA panel reuse, members packed one
//    core each across W lanes of one cluster (the sgemm_batched model).
//    QosOptions adds priority classes and per-request cycle deadlines
//    that feed admission control; with BatchOptions::max_queue bounded,
//    submit() resolves over-bound submissions with a typed
//    FaultError(FaultKind::Rejected) instead of queuing without limit
//    (try_submit() reports the RejectReason without the exception).
//
// Resilience (ISSUE 3, docs/robustness.md): with ResilienceOptions
// enabled, a dispatch that ends in an ftm::FaultError is retried with
// exponential backoff on a *different* cluster (shards of a split request
// re-dispatch individually instead of poisoning the merged promise),
// per-request deadlines bound both wall-clock and simulated-cycle
// latency, a per-cluster circuit breaker quarantines clusters after
// consecutive faults (draining their queues to healthy clusters and
// probing for recovery), and when every DSP path is exhausted the request
// executes on the host CPU (src/cpu/cpu_gemm) so its future still
// resolves with a correct C. Every future resolves: with a value, or
// with a typed FaultError — never a hang and never silent corruption.
//
// Simulated time: every cluster keeps cores_per_cluster lane clocks. A
// request occupies its opt.cores least-loaded lanes (within lane_limit)
// starting at their max — so a full-cluster GEMM is a barriered serial
// phase and single-core requests pack like the batched scheduler's
// per-core queues. makespan_cycles() is the max lane over all clusters;
// run_all() resets the clocks and reports the batch makespan, which is
// exactly the old sgemm_batched model when clusters == 1 (and
// sgemm_batched is now implemented that way).
#pragma once

#include <condition_variable>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "ftm/core/ftimm.hpp"
#include "ftm/fault/fault.hpp"
#include "ftm/runtime/batcher.hpp"
#include "ftm/runtime/plan_cache.hpp"
#include "ftm/runtime/request.hpp"
#include "ftm/runtime/stats.hpp"
#include "ftm/util/reporter.hpp"
#include "ftm/util/task_pool.hpp"

namespace ftm::runtime {

class NodeTier;  // node_tier.hpp — multi-node scale-out hook (ISSUE 9)

/// Self-healing knobs (all inert unless `enabled`). See
/// docs/robustness.md for the retry/quarantine state machine and the
/// deadline semantics.
struct ResilienceOptions {
  bool enabled = false;      ///< master switch; off = fail-fast (PR-1)
  /// Re-dispatches allowed per request (or per shard) after a FaultError;
  /// each retry binds to a different cluster and restores C first.
  int max_retries = 2;
  double backoff_ms = 0.05;        ///< first retry delay (host wall-clock)
  double backoff_multiplier = 2.0; ///< exponential growth per attempt
  /// Wall-clock budget per request, from submit() to resolution; 0 = none.
  /// A request over budget resolves with FaultError(DeadlineExceeded)
  /// without (re-)executing.
  double deadline_ms = 0;
  /// Simulated-cycle budget per dispatch; 0 = none. A dispatch whose
  /// simulated cost exceeds it counts as a fault (retryable: sim cycles
  /// are not wall time, and a healthy cluster may meet the budget).
  std::uint64_t deadline_cycles = 0;
  /// Consecutive faults that quarantine a cluster; 0 = never quarantine.
  int quarantine_after = 3;
  /// How often a quarantined cluster's worker probes for recovery (the
  /// circuit breaker's half-open trial).
  double probe_interval_ms = 2;
  /// Last resort: execute on the host CPU (cpu::cpu_gemm) when retries
  /// are exhausted or no healthy cluster remains.
  bool cpu_fallback = true;
};

/// Per-priority-class ABFT floors (ISSUE 8, docs/robustness.md §ABFT).
/// The effective integrity of a dispatch is the *strongest* of: the
/// request's own FtimmOptions::integrity, its QosOptions::integrity, and
/// its priority class's floor here — a request can demand more protection
/// than its class but never opt out of the class floor. Tolerance scales
/// merge by max (the loosest tolerance wins, avoiding false positives).
struct IntegrityPolicy {
  core::IntegrityOptions latency;  ///< floor for Priority::Latency
  core::IntegrityOptions normal;   ///< floor for Priority::Normal
  core::IntegrityOptions bulk;     ///< floor for Priority::Bulk

  const core::IntegrityOptions& for_priority(Priority p) const {
    switch (p) {
      case Priority::Latency: return latency;
      case Priority::Bulk: return bulk;
      case Priority::Normal: break;
    }
    return normal;
  }

  /// Convenience: one floor for every class.
  static IntegrityPolicy uniform(core::IntegrityMode mode,
                                 double tolerance_scale = 1.0) {
    IntegrityPolicy p;
    for (core::IntegrityOptions* o : {&p.latency, &p.normal, &p.bulk}) {
      o->mode = mode;
      o->tolerance_scale = tolerance_scale;
    }
    return p;
  }
};

struct RuntimeOptions {
  int clusters = 4;          ///< FT-m7032 has four GPDSP clusters
  core::FtimmOptions gemm;   ///< defaults for submit(in) / run_all
  bool plan_cache = true;
  bool work_stealing = true;
  bool split_wide = true;          ///< shard huge submissions (async path)
  std::size_t split_min_rows = 512;  ///< min M rows per shard
  bool keep_request_log = true;    ///< record per-request RequestStats
  ResilienceOptions resilience;    ///< self-healing layer (ISSUE 3)
  BatchOptions batching;           ///< coalescing + admission (ISSUE 7)
  IntegrityPolicy integrity;       ///< per-class ABFT floors (ISSUE 8)
  /// Optional fault injector, installed into every cluster's simulator
  /// (non-owning; must outlive the runtime). nullptr = no injection.
  fault::FaultInjector* fault_injector = nullptr;
  /// Optional tuned-plan source (e.g. a ftm::tune::TuningCache), installed
  /// into every cluster's engine; shared and thread-safe like the
  /// KernelCache. nullptr = analytic paper-default plans only.
  std::shared_ptr<const core::PlanProvider> tuning;
  /// Host execution engine (docs/performance.md): threads of the shared
  /// TaskPool that runs deferred functional work for all clusters. 0 =
  /// auto (min(hardware_concurrency, 8)), 1 = inline serial execution (no
  /// pool, the pre-engine behavior). Never affects simulated cycles. A
  /// request whose FtimmOptions already carry a host_pool keeps it.
  int host_threads = 0;
  /// Multi-node scale-out tier (ISSUE 9, docs/scaleout.md): when set, a
  /// submission of at least node_problem_flops dispatches through this
  /// tier (one sharded GEMM across a grid of modeled processors) instead
  /// of the single-processor cluster/split paths. A FaultError thrown by
  /// the tier (e.g. every node dead) flows through the normal resilience
  /// path: retries, then host-CPU fallback. Shared so several runtimes
  /// can front one node grid.
  std::shared_ptr<NodeTier> nodes;
  /// Flops at or above which a submission goes to the node tier. The
  /// default (~8.6 GFlop, 33x the wide-problem bar) keeps everything a
  /// single simulated processor handles well off the interconnect.
  double node_problem_flops = 8.0 * 1024 * 1024 * 1024;
};

/// Result of run_all(): the simulated makespan of a whole batch.
struct BatchResult {
  std::uint64_t cycles = 0;  ///< max over clusters of their lane makespan
  double seconds = 0;
  double gflops = 0;  ///< aggregate throughput: flops / makespan
  double flops = 0;
  std::size_t problems = 0;
  std::size_t wide_problems = 0;   ///< full-cluster, serial per cluster
  std::size_t small_problems = 0;  ///< one core each, lane-parallel
  std::vector<std::uint64_t> cluster_cycles;  ///< per-cluster makespan
};

/// Outcome of try_submit(): the future (engaged iff accepted) or the
/// typed reason admission control refused the request. Rejected
/// submissions never execute, never touch C, and are counted in
/// RuntimeStats::rejected rather than submitted.
struct SubmitResult {
  std::optional<std::future<core::GemmResult>> future;
  RejectReason reject = RejectReason::None;
  bool accepted() const { return reject == RejectReason::None; }
};

class GemmRuntime {
 public:
  /// Owns `ro.clusters` engines (plus worker threads) on `mc` machines.
  explicit GemmRuntime(const RuntimeOptions& ro = {},
                       const isa::MachineConfig& mc = isa::default_machine());

  /// Borrows caller-owned engines, one cluster each (sgemm_batched uses
  /// this with a single engine). Callers must not touch the engines while
  /// the runtime is live.
  GemmRuntime(const std::vector<core::FtimmEngine*>& engines,
              const RuntimeOptions& ro);

  /// Drains all pending requests, then joins the workers.
  ~GemmRuntime();

  GemmRuntime(const GemmRuntime&) = delete;
  GemmRuntime& operator=(const GemmRuntime&) = delete;

  /// Async submission; the future resolves (or rethrows) on completion.
  /// In functional mode the GemmInput's C view is written by a worker
  /// thread, so it must stay valid and un-aliased until then. Invalid
  /// inputs/options throw ContractViolation here, at submit time; errors
  /// discovered during execution surface through the future. With
  /// resilience enabled, a future that resolves exceptionally leaves C
  /// restored to its pre-submit contents.
  std::future<core::GemmResult> submit(const core::GemmInput& in);
  std::future<core::GemmResult> submit(const core::GemmInput& in,
                                       const core::FtimmOptions& opt);

  /// submit() with a QoS contract (priority class, virtual arrival, cycle
  /// deadline — see qos.hpp). A submission refused by admission control
  /// resolves its future with FaultError(FaultKind::Rejected).
  std::future<core::GemmResult> submit(const core::GemmInput& in,
                                       const core::FtimmOptions& opt,
                                       const QosOptions& qos);

  /// Non-throwing admission path: returns the future, or the typed
  /// RejectReason with no future and no side effects on C. Input-shape
  /// violations still throw ContractViolation (caller bugs, not load).
  SubmitResult try_submit(const core::GemmInput& in);
  SubmitResult try_submit(const core::GemmInput& in,
                          const core::FtimmOptions& opt,
                          const QosOptions& qos = {});

  /// Dispatches every batch the Batcher is still holding, regardless of
  /// triggers. wait_idle() and the destructor call this; tests and
  /// replay drivers use it to end a virtual-time epoch deterministically.
  void flush_batches();

  /// Blocking batch mode: schedules every problem (wide ones occupy whole
  /// clusters, small ones pack one core each, exactly the sgemm_batched
  /// policy generalized to N clusters), waits, and returns the batch
  /// makespan. Resets the simulated clocks first; do not interleave with
  /// async submissions. If any problem fails, the first failure is
  /// rethrown — after every future has resolved, so no work is left in
  /// flight.
  BatchResult run_all(std::span<const core::GemmInput> problems);
  BatchResult run_all(std::span<const core::GemmInput> problems,
                      const core::FtimmOptions& opt);

  /// Blocks until every submitted request has completed.
  void wait_idle();

  int clusters() const { return static_cast<int>(clusters_.size()); }
  const isa::MachineConfig& machine() const { return mc_; }
  const PlanCache& plans() const { return plans_; }
  core::FtimmEngine& engine(int cluster);

  /// Circuit-breaker state of one cluster (true = quarantined).
  bool quarantined(int cluster) const;

  RuntimeStats stats() const;
  std::vector<RequestStats> request_log() const;
  std::uint64_t makespan_cycles() const;
  void reset_clocks();

  /// Per-cluster utilization/caching/health summary as a reporter table
  /// (print with .print(title) or persist with .write_csv(path)).
  Table report() const;

 private:
  /// Per-cluster circuit breaker (guarded by stats_mu_).
  struct Health {
    int consecutive = 0;     ///< faults since the last success
    bool quarantined = false;
    std::uint64_t failures = 0;     ///< total faults charged to the cluster
    std::uint64_t quarantines = 0;  ///< times the breaker tripped
    std::uint64_t probes = 0;       ///< half-open recovery probes run
    std::chrono::steady_clock::time_point since{};  ///< quarantine start
  };

  struct ClusterState {
    core::FtimmEngine* engine = nullptr;
    std::unique_ptr<core::FtimmEngine> owned;
    std::vector<std::uint64_t> lanes;  ///< simulated per-core clocks
    std::uint64_t requests = 0;        ///< dispatches (incl. shards/steals)
    Health health;
  };

  void init_host_pool();
  void start_workers();
  void start_flusher();
  void stop_flusher();
  void flusher_loop();
  /// The batched dispatch (ISSUE 7): assigns one target cluster, computes
  /// the packing width W, pre-plans once per distinct shape, accounts
  /// shared A/B panels, and enqueues every member.
  void dispatch_batch(Batcher::Flush flush);
  /// Admission control: RejectReason::None, or why this submission must
  /// be refused under the current queue depth / predicted latency.
  RejectReason admit(const core::GemmInput& in,
                     const core::FtimmOptions& opt, const QosOptions& qos);
  /// Predicted simulated latency for admission: lane-frontier backlog
  /// beyond the arrival plus the shape class's EWMA execution cycles.
  std::uint64_t predict_latency_cycles(const QosOptions& qos,
                                       const tune::ShapeClass& cls) const;
  void worker_loop(int cluster);
  /// One dispatch: executes, then delivers / retries / falls back / fails.
  void process(int cluster, std::unique_ptr<Request> req, bool stolen);
  core::GemmResult run_on_cluster(int cluster, Request& req,
                                  RequestStats& rs);
  void handle_fault(int cluster, std::unique_ptr<Request> req,
                    std::exception_ptr err, RequestStats& rs);
  void run_cpu_fallback(std::unique_ptr<Request> req, RequestStats& rs);
  void fail(std::unique_ptr<Request> req, std::exception_ptr err,
            RequestStats& rs);
  void deliver(Request& req, const core::GemmResult& r);
  /// Re-routes a request popped by a quarantined cluster's worker.
  void divert(int cluster, std::unique_ptr<Request> req);
  void probe(int cluster);
  void record_success(int cluster);
  void record_failure(int cluster);
  int pick_retry_target(const Request& req) const;
  bool wall_deadline_passed(const Request& req) const;
  void snapshot_c(Request& req) const;
  void restore_c(Request& req) const;
  void log_request(const RequestStats& rs);
  /// Charges the makespan onto the cluster's lane clocks, starting no
  /// earlier than the request's virtual arrival; returns the finish cycle.
  std::uint64_t charge_lanes(ClusterState& cs, const Request& req,
                             std::uint64_t cycles);
  std::future<core::GemmResult> submit_split(const core::GemmInput& in,
                                             const core::FtimmOptions& opt,
                                             const QosOptions& qos,
                                             const std::vector<int>& targets);
  std::unique_ptr<Request> make_request(const core::GemmInput& in,
                                        const core::FtimmOptions& opt);
  void validate(const core::FtimmOptions& opt) const;
  /// Resolves the strongest of the request/QoS/class integrity options
  /// (see IntegrityPolicy); applied once at submit time.
  core::IntegrityOptions effective_integrity(const core::FtimmOptions& opt,
                                             const QosOptions& qos) const;

  RuntimeOptions ro_;
  isa::MachineConfig mc_;
  /// Shared by all cluster workers' host execution engines; nullptr when
  /// host_threads == 1. Declared before workers_ so it outlives them.
  std::unique_ptr<TaskPool> host_pool_;
  std::vector<ClusterState> clusters_;
  RequestQueue queue_;
  PlanCache plans_;
  std::vector<std::thread> workers_;

  /// Coalescing layer (only constructed when ro_.batching.enabled); the
  /// flusher thread fires the age trigger every ~max_delay_ms / 2.
  std::unique_ptr<Batcher> batcher_;
  std::thread flusher_;
  mutable std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;

  mutable std::mutex stats_mu_;  ///< guards lanes, counters, health, log
  std::uint64_t next_id_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t rerouted_ = 0;
  std::uint64_t tuned_plans_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batch_ddr_saved_ = 0;
  std::uint64_t checksum_checks_ = 0;
  std::uint64_t sdc_detected_ = 0;
  std::uint64_t sdc_corrected_ = 0;
  std::uint64_t recomputed_shards_ = 0;
  std::uint64_t node_dispatches_ = 0;
  /// EWMA of successful execution cycles per shape class — the execution
  /// estimate of deadline admission (predict_latency_cycles).
  std::map<tune::ShapeClass, double> class_cycles_;
  std::vector<RequestStats> log_;
};

}  // namespace ftm::runtime
