// Shape-keyed cache of GEMM execution plans (strategy + dynamically
// adjusted blocks), extracted from the per-call dispatch FtimmEngine used
// to run on every sgemm(): a repeated shape skips choose_strategy and the
// block adjuster entirely and goes straight to sgemm_planned(). The
// micro-kernels a plan needs are memoized in the engines' shared
// KernelCache, so a plan hit also means no kernel generation.
//
// Thread-safe: readers take a shared lock; hit/miss counters are atomics
// so the hot path never writes under the shared lock. Two threads missing
// the same key concurrently both compute the (deterministic, identical)
// plan and the second insert is a no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>

#include "ftm/core/ftimm.hpp"

namespace ftm::runtime {

/// Everything plan selection depends on. bandwidth_share, pingpong, and
/// functional mode affect execution cost only, never the chosen plan, so
/// they are deliberately not part of the key.
struct PlanKey {
  std::size_t m = 0, n = 0, k = 0;
  int cores = 8;
  bool dynamic_blocks = true;
  core::Strategy force = core::Strategy::Auto;
  /// Tuned plans are dtype-keyed (ISSUE 10): an F16 request must not
  /// reuse a plan the provider produced for the F32 class.
  kernelgen::DType dtype = kernelgen::DType::F32;

  static PlanKey of(std::size_t m, std::size_t n, std::size_t k,
                    const core::FtimmOptions& opt) {
    return PlanKey{m,         n,         k,       opt.cores,
                   opt.dynamic_blocks,   opt.force, opt.dtype};
  }

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    return std::tie(a.m, a.n, a.k, a.cores, a.dynamic_blocks, a.force,
                    a.dtype) < std::tie(b.m, b.n, b.k, b.cores,
                                        b.dynamic_blocks, b.force, b.dtype);
  }
};

class PlanCache {
 public:
  /// Returns the cached plan and counts a hit; nullopt counts a miss.
  std::optional<core::GemmPlan> find(const PlanKey& key) const;

  /// Inserts (first writer wins; duplicates are ignored).
  void insert(const PlanKey& key, const core::GemmPlan& plan);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  mutable std::shared_mutex mu_;
  std::map<PlanKey, core::GemmPlan> plans_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ftm::runtime
