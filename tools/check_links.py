#!/usr/bin/env python3
"""Fail on broken relative links in git-tracked Markdown files.

Checks every inline link/image target in `git ls-files '*.md'`. External
schemes (http/https/mailto) and pure in-page anchors are skipped; a
`path#fragment` target is checked for the path only. Targets resolve
relative to the file containing them and must exist in the working tree.

Usage: python3 tools/check_links.py [repo_root]
Exit code 0 = all links resolve, 1 = at least one broken link.
"""

import pathlib
import re
import subprocess
import sys

# Inline links and images: [text](target) / ![alt](target). Targets with
# spaces or nested parens don't occur in this repo and are out of scope.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files(root: pathlib.Path) -> list[pathlib.Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, check=True, capture_output=True, text=True,
    ).stdout
    return sorted({root / line for line in out.splitlines() if line})


def broken_links(path: pathlib.Path) -> list[tuple[int, str]]:
    bad = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).exists():
                bad.append((lineno, target))
    return bad


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    failures = 0
    files = md_files(root)
    for path in files:
        for lineno, target in broken_links(path):
            print(f"{path.relative_to(root)}:{lineno}: broken link: {target}")
            failures += 1
    print(f"checked {len(files)} markdown files: "
          f"{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
