#!/usr/bin/env python3
"""Diff two bench_perf_gate JSON files and fail on cycle regressions.

Usage: bench_compare.py BASELINE CURRENT [--tolerance PCT]

The simulator is bit-reproducible, so any difference is a real code
change, not noise; the default tolerance of 0.5% only absorbs intended
small refactors. Rules:

  * an entry present in BASELINE but missing from CURRENT fails (a
    variant silently dropped out of the gate matrix);
  * an entry whose cycles grew by more than the tolerance fails;
  * entries with 0 cycles (strategy not applicable to the shape) are
    compared for equality of applicability only;
  * new entries in CURRENT are allowed (the matrix can grow).

Entries may also carry an informational "wall_us" field (host wall-clock
of the run). Its aggregate drift is printed for visibility but can never
fail the gate: wall time is machine- and load-dependent, unlike the
bit-reproducible cycle counts.

An entry marked "informational": true (e.g. the replay goodput figures
bench_runtime --replay --json emits) is exempt from every rule above: it
is printed for trend visibility, never compared, and never required to
be present in CURRENT — the perf-gate matrix and informational metrics
come from different producers.

Baseline refresh procedure: docs/tuning.md.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    entries = {}
    walls = {}
    info = {}
    for e in doc["entries"]:
        key = (e["shape"], e["variant"])
        if e.get("informational"):
            info[key] = int(e["cycles"])
            continue
        entries[key] = int(e["cycles"])
        walls[key] = int(e.get("wall_us", 0))
    return entries, walls, info


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="max allowed cycle growth in percent (default 0.5)")
    args = ap.parse_args()

    base, base_walls, base_info = load(args.baseline)
    cur, cur_walls, cur_info = load(args.current)

    failures = []
    improved = 0
    for key, b in sorted(base.items()):
        shape, variant = key
        c = cur.get(key)
        if c is None:
            failures.append(f"{shape}/{variant}: missing from {args.current}")
            continue
        if b == 0 or c == 0:
            if b != c:
                failures.append(
                    f"{shape}/{variant}: applicability changed "
                    f"({b} -> {c} cycles)")
            continue
        delta = 100.0 * (c - b) / b
        if delta > args.tolerance:
            failures.append(
                f"{shape}/{variant}: {b} -> {c} cycles (+{delta:.2f}%)")
        elif delta < 0:
            improved += 1

    added = sorted(set(cur) - set(base))
    for shape, variant in added:
        print(f"note: new entry {shape}/{variant}")

    # Informational entries (never gated, never required to be present).
    for key in sorted(set(base_info) | set(cur_info)):
        shape, variant = key
        b, c = base_info.get(key), cur_info.get(key)
        if b is not None and c is not None and b != 0:
            drift = 100.0 * (c - b) / b
            print(f"informational: {shape}/{variant}: {b} -> {c} "
                  f"({drift:+.1f}%)")
        else:
            print(f"informational: {shape}/{variant}: "
                  f"baseline {b}, current {c}")

    # Informational wall-clock drift (never gated: host-dependent).
    base_wall = sum(base_walls.get(k, 0) for k in base)
    cur_wall = sum(cur_walls.get(k, 0) for k in base)
    if base_wall > 0 and cur_wall > 0:
        drift = 100.0 * (cur_wall - base_wall) / base_wall
        print(f"wall-clock (informational): {base_wall} -> {cur_wall} us "
              f"total ({drift:+.1f}%)")

    if failures:
        print(f"PERF GATE FAILED ({len(failures)} regressions, "
              f"tolerance {args.tolerance}%):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print(f"perf gate ok: {len(base)} entries compared, "
          f"{improved} improved, {len(added)} added")


if __name__ == "__main__":
    main()
