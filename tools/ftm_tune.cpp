// ftm_tune — offline pre-tuner for the shape-class tuning cache.
//
// Tunes a list of representative shapes on the simulated FT-m7032 cluster
// and writes (or merges into) a persistent cache file that FtimmEngine /
// GemmRuntime consult at plan time (docs/tuning.md).
//
//   ftm_tune --out tuned.json                         # default shape list
//   ftm_tune --out tuned.json --shapes "262144,32,32;32,32,262144"
//   ftm_tune --out tuned.json --cache tuned.json      # incremental merge
//   ftm_tune --smoke                                  # CI self-check
#include <cstdio>
#include <string>
#include <vector>

#include "ftm/tune/tuner.hpp"
#include "ftm/util/cli.hpp"
#include "ftm/util/reporter.hpp"

namespace {

using ftm::tune::Tuner;
using ftm::tune::TuningCache;

/// Parses "M,N,K;M,N,K;..." (whitespace-free). Returns false on malformed
/// input so the CLI can fail with a message instead of a throw.
bool parse_shapes(const std::string& text, std::vector<Tuner::Shape>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    unsigned long long m = 0, n = 0, k = 0;
    if (std::sscanf(item.c_str(), "%llu,%llu,%llu", &m, &n, &k) != 3 ||
        m == 0 || n == 0 || k == 0) {
      return false;
    }
    out->push_back({m, n, k});
    pos = end + 1;
  }
  return !out->empty();
}

/// The default pre-tune list: one representative per irregular class of
/// the paper's evaluation (§V) plus two regular anchors.
std::vector<Tuner::Shape> default_shapes() {
  return {
      {262144, 32, 32},   // type I: tall-and-skinny A, tiny B
      {262144, 64, 64},   // type I, wider
      {32, 32, 262144},   // type II: huge-K reduction
      {64, 64, 262144},   // type II, wider
      {8192, 96, 8192},   // type III: regular times skinny
      {4096, 64, 4096},   // type III, smaller
      {2048, 2048, 2048},  // regular anchor
      {4096, 4096, 4096},  // regular anchor
  };
}

int smoke() {
  // Tiny-budget end-to-end self-check: tune, round-trip the cache through
  // text, and verify the reloaded provider serves the tuned plan.
  ftm::tune::TunerOptions to;
  to.budget = 16;
  Tuner tuner(ftm::isa::default_machine(), to);
  TuningCache cache;
  const auto reports = tuner.tune_into(cache, {{262144, 32, 32}});
  const auto& e = reports[0].entry;
  if (e.tuned_cycles > e.default_cycles) {
    std::fprintf(stderr, "smoke: tuned slower than default\n");
    return 1;
  }
  TuningCache reloaded;
  if (reloaded.deserialize(cache.serialize()) !=
          ftm::tune::LoadStatus::Ok ||
      reloaded.size() != cache.size()) {
    std::fprintf(stderr, "smoke: serialize round-trip failed\n");
    return 1;
  }
  ftm::core::FtimmOptions opt;
  if (!reloaded.lookup(262144, 32, 32, opt)) {
    std::fprintf(stderr, "smoke: lookup missed the tuned class\n");
    return 1;
  }
  std::printf("smoke: ok (default %llu -> tuned %llu cycles)\n",
              static_cast<unsigned long long>(e.default_cycles),
              static_cast<unsigned long long>(e.tuned_cycles));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ftm::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: ftm_tune [--smoke] [--out FILE] [--cache FILE]\n"
        "                [--shapes \"M,N,K;M,N,K;...\"] [--cores N]\n"
        "                [--dtype f32|f16|bf16] [--budget N] [--rounds N]\n"
        "                [--seed N] [--csv FILE]\n");
    return 0;
  }
  if (cli.get_bool("smoke", false)) return smoke();

  ftm::tune::TunerOptions to;
  const std::string dtype = cli.get("dtype", "f32");
  if (dtype == "f16") {
    to.dtype = ftm::kernelgen::DType::F16;
  } else if (dtype == "bf16") {
    to.dtype = ftm::kernelgen::DType::BF16;
  } else if (dtype != "f32") {
    std::fprintf(stderr, "ftm_tune: bad --dtype '%s'\n", dtype.c_str());
    return 2;
  }
  to.cores = static_cast<int>(cli.get_int("cores", to.cores));
  to.budget = static_cast<int>(cli.get_int("budget", to.budget));
  to.rounds = static_cast<int>(cli.get_int("rounds", to.rounds));
  to.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::vector<Tuner::Shape> shapes;
  const std::string shapes_arg = cli.get("shapes", "");
  if (shapes_arg.empty()) {
    shapes = default_shapes();
  } else if (!parse_shapes(shapes_arg, &shapes)) {
    std::fprintf(stderr, "ftm_tune: bad --shapes '%s'\n", shapes_arg.c_str());
    return 2;
  }

  TuningCache cache;
  const std::string merge = cli.get("cache", "");
  if (!merge.empty()) {
    const auto st = cache.load(merge);
    if (st != ftm::tune::LoadStatus::Ok &&
        st != ftm::tune::LoadStatus::FileMissing) {
      std::fprintf(stderr, "ftm_tune: ignoring %s (%s)\n", merge.c_str(),
                   ftm::tune::to_string(st));
    }
  }

  Tuner tuner(ftm::isa::default_machine(), to);
  const auto reports = tuner.tune_into(cache, shapes);

  ftm::Table t({"m", "n", "k", "class", "strategy", "default_cycles",
                "tuned_cycles", "gain_pct", "evals", "pruned"});
  for (const auto& r : reports) {
    const auto& e = r.entry;
    const double gain =
        e.default_cycles == 0
            ? 0
            : 100.0 * (1.0 - static_cast<double>(e.tuned_cycles) /
                                 static_cast<double>(e.default_cycles));
    t.begin_row()
        .cell(e.m)
        .cell(e.n)
        .cell(e.k)
        .cell(e.cls.key())
        .cell(ftm::core::to_string(e.strategy))
        .cell(static_cast<std::size_t>(e.default_cycles))
        .cell(static_cast<std::size_t>(e.tuned_cycles))
        .cell(gain, 2)
        .cell(r.evaluated)
        .cell(r.pruned);
  }
  t.print("ftm_tune (" + std::to_string(cache.size()) + " cached classes)");
  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) t.write_csv(csv);

  const std::string out = cli.get("out", "");
  if (!out.empty() && !cache.save(out)) {
    std::fprintf(stderr, "ftm_tune: cannot write %s\n", out.c_str());
    return 1;
  }
  return 0;
}
